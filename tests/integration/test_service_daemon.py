"""Integration: the experiment daemon end-to-end over a unix socket.

The acceptance checks of the service layer:

* two **concurrent clients** submitting overlapping sweeps each get
  output byte-identical to the in-process (serial) client, while the
  overlapping cell executes exactly once (visible in the cache/dedup
  counters);
* the CLI ``--daemon`` path prints byte-identical stdout to the local
  path;
* a drain (what SIGINT triggers) finishes queued work, every stream
  still ends with its terminal event, and the worker pool is reaped.
"""

import threading

import pytest

from repro.experiments import registry
from repro.experiments.cache import ResultCache
from repro.experiments.sweep import job_sweep_csv, render_points
from repro.service import ExperimentClient, ExperimentService
from repro.service.protocol import ProtocolError
from repro.service.server import ServiceConfig


@pytest.fixture
def daemon(tmp_path):
    address = str(tmp_path / "svc.sock")
    cache = ResultCache(tmp_path / "cache", version="e2e")
    service = ExperimentService(
        address, config=ServiceConfig(workers=2), cache=cache
    )
    service.start()
    yield address, service
    if not service._stopped:
        service.stop(drain=False)


def sizes_axes(sizes):
    return {"sizes": [(s,) for s in sizes]}


class TestConcurrentClients:
    def test_overlapping_sweeps_identical_to_serial_with_dedup(self, daemon):
        address, service = daemon
        sweeps = {"alice": [20, 200], "bob": [200, 2000]}  # 200 overlaps
        outputs: dict = {}
        errors: list = []

        def run_client(name, sizes):
            try:
                client = ExperimentClient.connect(address, client=name)
                job = client.submit(
                    "scaling", None, axes=sizes_axes(sizes)
                )
                events = list(client.stream(job))
                outputs[name] = (
                    client.status(job), events, client.result(job)
                )
            except Exception as exc:  # pragma: no cover - the test's point
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run_client, args=(n, s))
            for n, s in sweeps.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert set(outputs) == set(sweeps)

        # byte-identity: each client's render + CSV equals the serial
        # in-process client's for the same grid
        spec = registry.get("scaling")
        local = ExperimentClient.in_process(progress=lambda m: None)
        for name, sizes in sweeps.items():
            record, events, results = outputs[name]
            ljob = local.submit("scaling", None, axes=sizes_axes(sizes))
            lrec = local.status(ljob)
            lres = local.result(ljob)
            assert render_points(spec, record.labels, results) == \
                render_points(spec, lrec.labels, lres)
            assert job_sweep_csv(sizes_axes(sizes), record) == \
                job_sweep_csv(sizes_axes(sizes), lrec)
            # the stream is complete and ends with the terminal summary
            assert events[0].kind == "job.queued"
            assert events[-1].kind == "job.done"
            assert [e.seq for e in events] == list(range(len(events)))

        # the overlapping cell ran exactly once: 3 distinct cells, 4
        # submitted tasks, and the fourth resolved via cache or dedup
        stats = ExperimentClient.connect(address).stats()
        counts = stats["counts"]
        assert counts["tasks_submitted"] == 4
        assert counts["tasks_executed"] == 3
        assert counts["cache_hits"] + counts["dedup_hits"] == 1
        hits = sum(outputs[n][0].cache_hits + outputs[n][0].dedup_hits
                   for n in outputs)
        assert hits == 1


class TestCliDaemonPath:
    def test_run_and_sweep_stdout_byte_identical(
        self, daemon, tmp_path, monkeypatch, capsys
    ):
        from tests.integration.test_runner_parallel import cli

        address, _ = daemon
        for argv in (
            ["run", "scaling", "--param", "sizes=20,200"],
            ["sweep", "scaling", "--axis", "sizes=20,200"],
        ):
            rc1, local_out, _ = cli(
                argv + ["--no-cache"], tmp_path / "cc", monkeypatch, capsys
            )
            rc2, daemon_out, err = cli(
                argv + ["--daemon", address], tmp_path / "cc", monkeypatch, capsys
            )
            assert rc1 == rc2 == 0
            assert daemon_out == local_out
            assert "job.done" in err  # progress went to stderr

    def test_submit_stream_status_verbs(
        self, daemon, tmp_path, monkeypatch, capsys
    ):
        import json

        from tests.integration.test_runner_parallel import cli

        address, _ = daemon
        rc, out, _ = cli(
            ["submit", "scaling", "--param", "sizes=20",
             "--daemon", address],
            tmp_path / "cc", monkeypatch, capsys,
        )
        assert rc == 0
        job_id = out.strip()
        rc, out, _ = cli(
            ["stream", job_id, "--daemon", address],
            tmp_path / "cc", monkeypatch, capsys,
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.strip().splitlines()]
        assert lines[0]["kind"] == "job.queued"
        assert lines[-1]["kind"] == "job.done"
        rc, out, _ = cli(
            ["status", job_id, "--daemon", address],
            tmp_path / "cc", monkeypatch, capsys,
        )
        assert rc == 0
        assert json.loads(out)["state"] == "done"
        rc, out, _ = cli(
            ["list-jobs", "--daemon", address],
            tmp_path / "cc", monkeypatch, capsys,
        )
        assert rc == 0 and job_id in out


class TestDrain:
    def test_drain_finishes_work_ends_streams_reaps_workers(self, daemon):
        address, service = daemon
        client = ExperimentClient.connect(address)
        job = client.submit("scaling", {"sizes": (20, 200)})
        service.request_drain()  # what the first SIGINT does
        # the queued job still runs to completion with a terminal event
        events = list(client.stream(job))
        assert events[-1].kind == "job.done"
        # new submissions are rejected while draining
        with pytest.raises(ProtocolError, match="draining"):
            ExperimentClient.connect(address).submit(
                "scaling", {"sizes": (20,)}
            )
        # ... and the daemon then stops with the pool reaped
        waiter = threading.Thread(target=service.serve_forever)
        waiter.start()
        waiter.join(timeout=60)
        assert not waiter.is_alive()
        assert service._stopped and service._pool is None

    def test_unknown_job_surfaces_as_protocol_error(self, daemon):
        address, _ = daemon
        client = ExperimentClient.connect(address)
        with pytest.raises(ProtocolError, match="unknown job"):
            client.status("j9999")
