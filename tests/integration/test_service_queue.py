"""Integration: the experiment service's queue semantics, driven
synchronously (``workers=0`` + ``run_pending``) — priority order,
per-client quota, in-flight dedup, cache resolution, cancel/drain —
plus the versioned JobRecord/JobEvent envelope round trip.
"""

import os
from dataclasses import dataclass

import pytest

from repro.experiments import registry
from repro.experiments.cache import ResultCache
from repro.experiments.registry import ExperimentParamError, ExperimentSpec, ParamSpec
from repro.experiments.serde import (
    JOB_SCHEMA_VERSION,
    JobEvent,
    JobRecord,
)
from repro.service.server import ExperimentService, ServiceConfig, ServiceError


# --- a tiny registered spec the inline executor can import ---------------

@dataclass
class SvcResult:
    value: int

    def render(self) -> str:
        return f"svc value={self.value}"

    def to_json(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_json(cls, payload: dict) -> "SvcResult":
        return cls(**payload)


#: set to a file path to log execution order (priority-order test)
ORDER_ENV = "REPRO_SVC_ORDER_FILE"


def run_svc(*, value: int = 0) -> SvcResult:
    path = os.environ.get(ORDER_ENV)
    if path:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(f"{value}\n")
    return SvcResult(value)


_HERE = "tests.integration.test_service_queue"

try:
    registry.get("svc-tiny")
except KeyError:
    registry.register(ExperimentSpec(
        name="svc-tiny", title="service-test artifact", module=_HERE,
        entry="run_svc", result_type="SvcResult",
        params=(ParamSpec("value", "int", 0),),
    ))


def make_service(**config) -> ExperimentService:
    return ExperimentService(config=ServiceConfig(workers=0, **config))


def one(value: int) -> list:
    return [("svc-tiny", {"value": value}, "")]


class TestSerde:
    def test_event_round_trips(self):
        event = JobEvent(kind="row", job_id="j0001", seq=3, data={"index": 0})
        back = JobEvent.from_json(event.to_json())
        assert back == event and back.version == JOB_SCHEMA_VERSION
        assert not back.terminal

    def test_terminal_events(self):
        for kind in ("job.done", "job.failed", "job.cancelled"):
            assert JobEvent(kind=kind, job_id="j", seq=0).terminal

    def test_record_round_trips_exactly(self):
        record = JobRecord(
            job_id="j0001", client="c", artifact="sweep:scaling",
            state="done", artifacts=["scaling"],
            params=[{"sizes": (20, 200)}],  # tuple normalizes to list
            labels=["scaling sizes=20"], tasks_total=1, tasks_done=1,
            results=[{"points": []}],
        )
        back = JobRecord.from_json(record.to_json())
        assert back == record
        assert back.params == [{"sizes": [20, 200]}]
        assert back.terminal

    def test_newer_schema_version_rejected(self):
        payload = JobRecord(job_id="j", client="c", artifact="a").to_json()
        payload["version"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported schema version"):
            JobRecord.from_json(payload)
        event = JobEvent(kind="row", job_id="j", seq=0).to_json()
        event["version"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported schema version"):
            JobEvent.from_json(event)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown state"):
            JobRecord(job_id="j", client="c", artifact="a", state="exploded")

    def test_unknown_field_rejected(self):
        payload = JobEvent(kind="row", job_id="j", seq=0).to_json()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            JobEvent.from_json(payload)


class TestSubmitBoundary:
    def test_empty_job_rejected(self):
        with pytest.raises(ServiceError, match="at least one task"):
            make_service().submit("c", [])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ServiceError, match="unknown experiment"):
            make_service().submit("c", [("figure7", None, "")])

    def test_bad_params_fail_the_submit_not_the_worker(self):
        with pytest.raises(ExperimentParamError, match="no parameter"):
            make_service().submit("c", [("svc-tiny", {"bogus": 1}, "")])

    def test_non_cacheable_artifact_rejected_over_the_wire(self):
        svc = ExperimentService("/tmp/never-bound.sock")  # address set, not started
        with pytest.raises(ServiceError, match="cannot .*be returned over the wire"):
            svc.submit("c", [("trace", None, "")])

    def test_draining_rejects_submits(self):
        svc = make_service()
        svc.request_drain()
        with pytest.raises(ServiceError, match="draining"):
            svc.submit("c", one(1))


class TestQueueSemantics:
    def test_inline_job_runs_to_done_with_full_event_log(self):
        svc = make_service()
        job = svc.submit("c", one(7))
        assert svc.status(job).state == "queued"
        assert svc.run_pending() == 1
        record = svc.status(job)
        assert record.state == "done" and record.tasks_done == 1
        assert record.results == [{"value": 7}]
        kinds = [e.kind for e in svc.events(job)]
        assert kinds == [
            "job.queued", "task.started", "task.finished", "row", "job.done",
        ]
        seqs = [e.seq for e in svc.events(job)]
        assert seqs == list(range(len(kinds)))  # dense, from 0

    def test_wait_timeout_returns_non_terminal_record(self):
        svc = make_service()
        job = svc.submit("c", one(1))
        record = svc.wait(job, timeout=0.01)
        assert not record.terminal and record.state == "queued"

    def test_priority_order_beats_submission_order(self, tmp_path, monkeypatch):
        order = tmp_path / "order.log"
        monkeypatch.setenv(ORDER_ENV, str(order))
        svc = make_service()
        svc.submit("c", one(1), priority=0)
        svc.submit("c", one(2), priority=5)
        svc.submit("c", one(3), priority=0)
        assert svc.run_pending() == 3
        assert order.read_text().split() == ["2", "1", "3"]

    def test_quota_skips_saturated_client(self):
        svc = ExperimentService(config=ServiceConfig(workers=4, quota=1))
        svc.submit("hog", [("svc-tiny", {"value": 1}, ""),
                           ("svc-tiny", {"value": 2}, "")])
        other = svc.submit("interactive", one(3))
        with svc._cond:
            job1, _ = svc._pick_locked()  # hog's first task claims its quota
            assert job1.record.client == "hog"
            picked = svc._pick_locked()
        assert picked is not None
        job2, _ = picked
        # hog's second task is skipped: the later client runs instead
        assert job2.record.job_id == other

    def test_identical_inflight_task_dedups_instead_of_rerunning(self):
        svc = make_service()
        j1 = svc.submit("a", one(7))
        with svc._cond:
            action = svc._pick_locked()  # j1's task is now in flight
        j2 = svc.submit("b", one(7))
        with svc._cond:
            assert svc._pick_locked() is None  # folded into the twin
        svc._dispatch(*action)
        r1, r2 = svc.status(j1), svc.status(j2)
        assert r1.state == r2.state == "done"
        assert (r1.dedup_hits, r2.dedup_hits) == (0, 1)
        assert r2.results == r1.results == [{"value": 7}]
        finished = [e for e in svc.events(j2) if e.kind == "task.finished"]
        assert finished[0].data["source"] == "dedup"
        assert svc._counts["tasks_executed"] == 1

    def test_cache_resolves_repeat_jobs_without_execution(self, tmp_path):
        cache = ResultCache(tmp_path, version="q")
        svc = ExperimentService(
            config=ServiceConfig(workers=0), cache=cache
        )
        j1 = svc.submit("a", one(5))
        assert svc.run_pending() == 1
        j2 = svc.submit("b", one(5))
        assert svc.run_pending() == 1
        r2 = svc.status(j2)
        assert r2.state == "done" and r2.cache_hits == 1
        assert "task.cached" in [e.kind for e in svc.events(j2)]
        assert svc._counts["tasks_executed"] == 1
        assert svc.status(j1).results == r2.results

    def test_cancel_drops_queued_tasks_and_ends_the_stream(self):
        svc = make_service()
        job = svc.submit("c", one(1))
        record = svc.cancel(job)
        assert record.state == "cancelled"
        assert record.error.startswith("cancelled")
        assert svc.run_pending() == 0  # nothing left to move
        events = svc.events(job)
        assert events[-1].kind == "job.cancelled"
        assert events[-1].data["dropped_tasks"] == 1
        # cancelling a terminal job is a no-op
        assert svc.cancel(job).state == "cancelled"

    def test_terminal_jobs_trimmed_past_keep_jobs(self):
        svc = make_service(keep_jobs=1)
        j1 = svc.submit("c", one(1))
        svc.run_pending()
        j2 = svc.submit("c", one(2))
        with pytest.raises(ServiceError, match="unknown job"):
            svc.status(j1)
        assert svc.status(j2).state == "queued"

    def test_failed_task_fails_the_job_with_terminal_event(self, monkeypatch):
        svc = make_service()
        job = svc.submit("c", one(1))

        def boom(*a, **k):
            raise RuntimeError("kaput")

        monkeypatch.setattr("repro.service.server._execute", boom)
        svc.run_pending()
        record = svc.status(job)
        assert record.state == "failed" and "kaput" in record.error
        assert svc.events(job)[-1].kind == "job.failed"

    def test_stats_reports_counters_and_histograms(self, tmp_path):
        svc = ExperimentService(
            config=ServiceConfig(workers=0),
            cache=ResultCache(tmp_path, version="q"),
        )
        svc.submit("c", one(1))
        svc.run_pending()
        stats = svc.stats()
        assert stats["counts"]["jobs_submitted"] == 1
        assert stats["counts"]["tasks_executed"] == 1
        assert stats["cache"]["stores"] == 1
        assert "svc.wait_ms" in stats["histograms"]
        assert stats["queue_depth"] == 0 and not stats["draining"]

    def test_event_replay_from_seq(self):
        svc = make_service()
        job = svc.submit("c", one(1))
        svc.run_pending()
        tail = svc.events(job, from_seq=3)
        assert [e.kind for e in tail] == ["row", "job.done"]
        assert tail[0].seq == 3
