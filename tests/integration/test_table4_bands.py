"""Integration: Table 4 micro-benchmarks land in the paper's bands.

Absolute-value assertions use generous tolerances (±15 % unless noted);
the *orderings* between rows — which mechanism costs more than which —
are asserted tightly, because they are the paper's actual claims.
"""

import pytest

from repro.experiments import paper
from repro.experiments.microbench import (
    am_base_rtt,
    mpl_rtt,
    run_cc_microbench,
    run_sc_microbench,
)

_ITERS = 25


@pytest.fixture(scope="module")
def cc():
    return {
        name: run_cc_microbench(name, iters=_ITERS)
        for name in paper.TABLE4
    }


@pytest.fixture(scope="module")
def sc():
    return {
        name: run_sc_microbench(name, iters=_ITERS)
        for name in (
            "0-Word Atomic",
            "GP 2-Word R/W",
            "BulkWrite 40-Word",
            "BulkRead 40-Word",
            "Prefetch 20-Word",
        )
    }


class TestReferences:
    def test_am_rtt_is_55us(self):
        assert am_base_rtt(iters=_ITERS) == pytest.approx(55.0, rel=0.05)

    def test_mpl_rtt_is_88us(self):
        assert mpl_rtt(iters=_ITERS) == pytest.approx(88.0, rel=0.05)


class TestCCAbsolutes:
    @pytest.mark.parametrize(
        "name",
        list(paper.TABLE4),
    )
    def test_total_within_band(self, cc, name):
        measured = cc[name].total_us
        published = paper.TABLE4[name].cc_total
        assert measured == pytest.approx(published, rel=0.15), (
            f"{name}: measured {measured:.1f} vs paper {published}"
        )


class TestSCAbsolutes:
    @pytest.mark.parametrize(
        "name",
        ["0-Word Atomic", "GP 2-Word R/W", "BulkWrite 40-Word", "BulkRead 40-Word", "Prefetch 20-Word"],
    )
    def test_total_within_band(self, sc, name):
        measured = sc[name].total_us
        published = paper.TABLE4[name].sc_total
        assert measured == pytest.approx(published, rel=0.15)


class TestOrderings:
    """The qualitative content of Table 4."""

    def test_null_rmi_close_to_am_and_beats_mpl(self, cc):
        """'only 12 us slower than the base AM round trip and 21 us
        faster than IBM MPL'."""
        simple = cc["0-Word Simple"].total_us
        am = am_base_rtt(iters=_ITERS)
        mpl = mpl_rtt(iters=_ITERS)
        assert 5.0 <= simple - am <= 20.0
        assert simple < mpl - 10.0

    def test_variants_scale_with_thread_operations(self, cc):
        assert cc["0-Word Simple"].total_us < cc["0-Word"].total_us
        assert cc["0-Word"].total_us < cc["0-Word Threaded"].total_us
        assert cc["0-Word Threaded"].total_us <= cc["0-Word Atomic"].total_us + 1.0

    def test_argument_bearing_rmi_pays_bulk_path(self, cc):
        """1-Word jumps ~15 us above 0-Word (the AM bulk primitive)."""
        jump = cc["1-Word"].am_us - cc["0-Word"].am_us
        assert 8.0 <= jump <= 20.0

    def test_bulk_read_pays_more_than_bulk_write(self, cc):
        """The double copy at the initiator."""
        assert (
            cc["BulkRead 40-Word"].runtime_us
            > cc["BulkWrite 40-Word"].runtime_us + 5.0
        )

    def test_prefetch_hides_latency_but_less_than_splitc(self, cc, sc):
        """Per-element prefetch beats blocking GP reads in both languages,
        but thread overhead blunts CC++'s gain (the paper's point)."""
        assert cc["Prefetch 20-Word"].total_us < 0.6 * cc["GP 2-Word R/W"].total_us
        assert sc["Prefetch 20-Word"].total_us < 0.4 * sc["GP 2-Word R/W"].total_us
        cc_gain = cc["GP 2-Word R/W"].total_us / cc["Prefetch 20-Word"].total_us
        sc_gain = sc["GP 2-Word R/W"].total_us / sc["Prefetch 20-Word"].total_us
        assert sc_gain > cc_gain

    def test_splitc_cheaper_than_ccpp_everywhere(self, cc, sc):
        for name in sc:
            assert sc[name].total_us < cc[name].total_us


class TestThreadOpCounts:
    """Table 4's Yield/Create/Sync columns, measured not assumed."""

    def test_simple_has_no_thread_switches(self, cc):
        row = cc["0-Word Simple"]
        assert row.yields == 0
        assert row.creates == 0

    def test_normal_has_one_switch_at_sender(self, cc):
        assert cc["0-Word"].yields == pytest.approx(1.0)
        assert cc["0-Word"].creates == 0

    def test_threaded_creates_one_thread(self, cc):
        row = cc["0-Word Threaded"]
        assert row.creates == pytest.approx(1.0)
        assert row.yields == pytest.approx(2.0)

    def test_atomic_adds_sync_ops_over_threaded(self, cc):
        assert cc["0-Word Atomic"].syncs > cc["0-Word Threaded"].syncs

    def test_sync_counts_in_paper_range(self, cc):
        for name in paper.TABLE4:
            assert 8.0 <= cc[name].syncs <= 25.0, name

    def test_splitc_pays_zero_thread_ops(self, sc):
        for name, row in sc.items():
            assert row.yields == 0, name
            assert row.creates == 0, name
            assert row.syncs == 0, name
