"""Property tests: application correctness over randomized workloads.

These are the heavyweight invariants: for arbitrary (small) problem
instances, the distributed runs must agree with the sequential
references bit-for-bit-ish (same operation order => tight tolerances).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.em3d import Em3dGraph, Em3dParams, reference_steps, run_splitc_em3d
from repro.apps.lu import LuParams, LuWorkload, reference_lu, run_splitc_lu
from repro.apps.water import WaterParams, WaterSystem, reference_water, run_splitc_water


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([0.0, 0.3, 1.0]),
    st.sampled_from(["base", "ghost", "bulk"]),
)
def test_em3d_splitc_agrees_with_reference(seed, pct, version):
    graph = Em3dGraph(
        Em3dParams(n_nodes=32, degree=3, n_procs=4, pct_remote=pct, seed=seed)
    )
    ref = reference_steps(graph, 2)
    res = run_splitc_em3d(graph, steps=2, version=version, warmup_steps=0)
    assert np.allclose(res.values, ref)


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["atomic", "prefetch"]),
)
def test_water_splitc_agrees_with_reference(seed, version):
    system = WaterSystem(WaterParams(n_molecules=8, n_procs=4, steps=2, seed=seed))
    ref_pos, ref_vel, ref_pot = reference_water(system, 2)
    res = run_splitc_water(system, version=version)
    assert np.allclose(res.positions, ref_pos)
    assert np.allclose(res.velocities, ref_vel)
    assert np.isclose(res.potential, ref_pot)


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_lu_splitc_agrees_with_reference(seed):
    work = LuWorkload(LuParams(n=24, block=8, n_procs=4, seed=seed))
    ref = reference_lu(work)
    res = run_splitc_lu(work)
    assert np.allclose(res.packed, ref)
