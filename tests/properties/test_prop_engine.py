"""Property tests: the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired_times = []
    for d in ds:
        sim.schedule(d, lambda: fired_times.append(sim.now))
    sim.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(ds)


@given(delays)
def test_clock_never_goes_backwards_with_nesting(ds):
    sim = Simulator()
    observed = []

    def chain(remaining):
        observed.append(sim.now)
        if remaining:
            sim.schedule(remaining[0], lambda: chain(remaining[1:]))

    sim.schedule(0.0, lambda: chain(list(ds)))
    sim.run()
    assert observed == sorted(observed)


@given(delays, st.data())
def test_cancelled_subset_never_fires(ds, data):
    sim = Simulator()
    fired = []
    events = [
        sim.schedule_event(d, lambda i=i: fired.append(i)) for i, d in enumerate(ds)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(ds) - 1))
    )
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(ds))) - to_cancel


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
def test_fifo_among_equal_timestamps(groups):
    """Events at identical times fire in scheduling order."""
    sim = Simulator()
    fired = []
    for seq, t in enumerate(groups):
        sim.schedule(float(t), lambda s=seq, tt=t: fired.append((tt, s)))
    sim.run()
    assert fired == sorted(fired)


actions = st.lists(
    st.tuples(
        st.sampled_from(["delay", "zero", "soon", "cancelled", "inline"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60)
@given(actions, delays)
def test_fast_and_slow_engines_fire_identically(acts, seed_delays):
    """The fast path (lane, freelist, inline advances) is bit-identical to
    the heap-only engine on arbitrary mixes of scheduling styles."""

    def drive(fast_path):
        sim = Simulator(fast_path=fast_path)
        fired = []

        def react(i, kind, amount):
            def fire():
                fired.append((i, kind, sim.now))
                if kind == "zero":
                    sim.schedule(0.0, lambda: fired.append((i, "nested", sim.now)))
                elif kind == "soon":
                    sim.call_soon(lambda: fired.append((i, "nested", sim.now)))
                elif kind == "inline":
                    # mirrors the trampoline's charge fusion: advance the
                    # clock and continue inline when possible, otherwise do
                    # the same work from a real resume event
                    wait = max(amount, 0.5)
                    if sim.advance_inline(wait):
                        fired.append((i, "resumed", sim.now))
                    else:
                        sim.schedule(wait, lambda: fired.append((i, "resumed", sim.now)))

            return fire

        for i, d in enumerate(seed_delays):
            sim.schedule(d, lambda i=i: fired.append((i, "seed", sim.now)))
        for i, (kind, amount) in enumerate(acts):
            if kind == "cancelled":
                ev = sim.schedule_event(amount + 1.0, lambda: fired.append("never"))
                ev.cancel()
            else:
                sim.schedule(amount, react(i, kind, amount))
        sim.run()
        return fired, sim.now, sim.events_fired

    assert drive(True) == drive(False)


@settings(max_examples=25)
@given(delays)
def test_run_until_is_resumable_and_equivalent(ds):
    """Chunked runs produce the same final state as one run."""
    one = Simulator()
    fired_one = []
    for d in ds:
        one.schedule(d, lambda d=d: fired_one.append(d))
    one.run()

    two = Simulator()
    fired_two = []
    for d in ds:
        two.schedule(d, lambda d=d: fired_two.append(d))
    horizon = max(ds) / 2
    two.run(until=horizon)
    two.run()
    assert fired_one == fired_two
    assert one.now == two.now
