"""Property tests: the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired_times = []
    for d in ds:
        sim.schedule(d, lambda: fired_times.append(sim.now))
    sim.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(ds)


@given(delays)
def test_clock_never_goes_backwards_with_nesting(ds):
    sim = Simulator()
    observed = []

    def chain(remaining):
        observed.append(sim.now)
        if remaining:
            sim.schedule(remaining[0], lambda: chain(remaining[1:]))

    sim.schedule(0.0, lambda: chain(list(ds)))
    sim.run()
    assert observed == sorted(observed)


@given(delays, st.data())
def test_cancelled_subset_never_fires(ds, data):
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(ds)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(ds) - 1))
    )
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(ds))) - to_cancel


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
def test_fifo_among_equal_timestamps(groups):
    """Events at identical times fire in scheduling order."""
    sim = Simulator()
    fired = []
    for seq, t in enumerate(groups):
        sim.schedule(float(t), lambda s=seq, tt=t: fired.append((tt, s)))
    sim.run()
    assert fired == sorted(fired)


@settings(max_examples=25)
@given(delays)
def test_run_until_is_resumable_and_equivalent(ds):
    """Chunked runs produce the same final state as one run."""
    one = Simulator()
    fired_one = []
    for d in ds:
        one.schedule(d, lambda d=d: fired_one.append(d))
    one.run()

    two = Simulator()
    fired_two = []
    for d in ds:
        two.schedule(d, lambda d=d: fired_two.append(d))
    horizon = max(ds) / 2
    two.run(until=horizon)
    two.run()
    assert fired_one == fired_two
    assert one.now == two.now
