"""Property tests: AM flow control respects its window for any setting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import install_am
from repro.machine.cluster import Cluster
from repro.machine.costs import SP2_COSTS


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),   # credit window
    st.integers(min_value=1, max_value=40),   # messages to pump
)
def test_in_flight_never_exceeds_window(window, n_messages):
    costs = SP2_COSTS.with_net(credit_window=window)
    cluster = Cluster(2, costs=costs)
    eps = install_am(cluster)
    handled = {"n": 0}
    max_in_flight = {"v": 0}

    def sink(ep, src, frame):
        handled["n"] += 1
        return
        yield

    for ep in eps:
        ep.register_handler("sink", sink)

    def sender(node):
        ep = node.service("am")
        for _ in range(n_messages):
            yield from ep.send_short(1, "sink", nbytes=12)
            in_flight = (
                cluster.network.packets_sent - cluster.network.packets_delivered
            )
            max_in_flight["v"] = max(max_in_flight["v"], in_flight)

    def server(node):
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    cluster.launch(1, server(cluster.nodes[1]), daemon=True)
    cluster.launch(0, sender(cluster.nodes[0]))
    cluster.run()

    assert handled["n"] == n_messages
    # data messages in flight can never exceed the window (+1 slack for a
    # credit-refill control message sharing the wire)
    assert max_in_flight["v"] <= window + 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=6))
def test_saturated_exchange_completes_for_any_window(window):
    """Bidirectional saturation never deadlocks, whatever the window."""
    costs = SP2_COSTS.with_net(credit_window=window)
    cluster = Cluster(2, costs=costs)
    eps = install_am(cluster)
    counts = {0: 0, 1: 0}

    def sink(ep, src, frame):
        counts[ep.node.nid] += 1
        return
        yield

    for ep in eps:
        ep.register_handler("sink", sink)

    def pump(node, dst, n):
        ep = node.service("am")
        for _ in range(n):
            yield from ep.send_short(dst, "sink", nbytes=12)
        yield from ep.poll_until(lambda: counts[node.nid] >= n)

    n = 3 * window
    cluster.launch(0, pump(cluster.nodes[0], 1, n))
    cluster.launch(1, pump(cluster.nodes[1], 0, n))
    cluster.run()
    assert counts == {0: n, 1: n}
