"""Property tests: data-layout bijections (spread arrays, LU geometry,
EM3D slots)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lu.blocked import LuParams, LuWorkload
from repro.splitc.memory import SpreadArray


@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=1, max_value=16),
    st.sampled_from(["cyclic", "block"]),
)
def test_spread_array_locate_is_bijective(total, nodes, layout):
    sp = SpreadArray("s", total, nodes, layout=layout)
    seen = set()
    for i in range(total):
        node, off = sp.locate(i)
        assert 0 <= node < nodes
        assert 0 <= off < sp.local_size(node)
        assert (node, off) not in seen
        seen.add((node, off))
    assert sum(sp.local_size(q) for q in range(nodes)) == total


@given(
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=1, max_value=8),
)
def test_spread_ptr_matches_locate(total, nodes):
    sp = SpreadArray("s", total, nodes)
    for i in range(total):
        gp = sp.ptr(i)
        assert (gp.node, gp.offset) == sp.locate(i)
        assert gp.region == "s"


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from([(16, 4), (32, 8), (48, 8), (64, 16)]),
    st.sampled_from([1, 2, 4]),
)
def test_lu_block_geometry_consistent(shape, n_procs):
    n, block = shape
    work = LuWorkload(LuParams(n=n, block=block, n_procs=n_procs, seed=1))
    b = work.params.n_blocks
    # every block owned exactly once, offsets distinct per owner
    per_owner_offsets = {}
    for i in range(b):
        for j in range(b):
            q = work.owner(i, j)
            off = work.block_offset(i, j)
            per_owner_offsets.setdefault(q, set())
            assert off not in per_owner_offsets[q]
            per_owner_offsets[q].add(off)
    for q in range(n_procs):
        assert len(work.owned_blocks(q)) == len(per_owner_offsets.get(q, set()))
    # panel + interior work at each step covers exactly the trailing blocks
    for k in range(b):
        panels = sum(
            len(work.panel_rows(q, k)) + len(work.panel_cols(q, k))
            for q in range(n_procs)
        )
        interior = sum(len(work.interior_blocks(q, k)) for q in range(n_procs))
        assert panels == 2 * (b - k - 1)
        assert interior == (b - k - 1) ** 2
