"""Property tests: machine-level invariants (message conservation, time
accounting, determinism) over randomized communication workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import install_am
from repro.machine.cluster import Cluster
from repro.sim.account import Category
from repro.sim.effects import Charge

# a workload: each entry is (sender, receiver, compute_us before sending)
workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=50.0),
    ),
    min_size=1,
    max_size=15,
)


def _run_workload(ops):
    cluster = Cluster(3)
    eps = install_am(cluster)
    handled = []

    def h(ep, src, frame):
        handled.append((src, ep.node.nid))
        return
        yield

    for ep in eps:
        ep.register_handler("h", h)

    def server(node):
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    by_sender: dict[int, list] = {}
    for sender, receiver, compute in ops:
        by_sender.setdefault(sender, []).append((receiver, compute))

    def sender_body(node, plan):
        ep = node.service("am")
        for receiver, compute in plan:
            if compute:
                yield Charge(compute, Category.CPU)
            yield from ep.send_short(receiver, "h", nbytes=16)

    for nid in range(3):
        cluster.launch(nid, server(cluster.nodes[nid]), daemon=True)
    for sender, plan in by_sender.items():
        cluster.launch(sender, sender_body(cluster.nodes[sender], plan))
    cluster.run()
    return cluster, handled


@settings(max_examples=40, deadline=None)
@given(workloads)
def test_every_message_sent_is_handled_exactly_once(ops):
    cluster, handled = _run_workload(ops)
    assert len(handled) == len(ops)
    assert cluster.network.packets_sent == cluster.network.packets_delivered
    assert all(not n.has_mail for n in cluster.nodes)


@settings(max_examples=40, deadline=None)
@given(workloads)
def test_charged_time_never_exceeds_elapsed(ops):
    cluster, _ = _run_workload(ops)
    elapsed = cluster.sim.now
    for node in cluster.nodes:
        busy = node.account.total(include_idle=False)
        assert busy <= elapsed + 1e-9


@settings(max_examples=40, deadline=None)
@given(workloads)
def test_cpu_charges_are_conserved(ops):
    """Application CPU charged equals the CPU the workload specified."""
    cluster, _ = _run_workload(ops)
    expected = sum(compute for _, _, compute in ops)
    total_cpu = sum(n.account.get(Category.CPU) for n in cluster.nodes)
    assert total_cpu <= expected + 1e-6
    assert total_cpu >= expected - 1e-6


@settings(max_examples=25, deadline=None)
@given(workloads)
def test_simulation_is_deterministic(ops):
    a_cluster, a_handled = _run_workload(ops)
    b_cluster, b_handled = _run_workload(ops)
    assert a_cluster.sim.now == b_cluster.sim.now
    assert a_handled == b_handled
    assert (
        a_cluster.aggregate_counters().snapshot()
        == b_cluster.aggregate_counters().snapshot()
    )
    for an, bn in zip(a_cluster.nodes, b_cluster.nodes):
        assert an.account.snapshot() == bn.account.snapshot()
