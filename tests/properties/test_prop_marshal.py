"""Property tests: marshalling round-trips arbitrary argument tuples."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.marshal import marshal_args, unmarshal_args

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=40),
    st.binary(max_size=40),
)

trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=12,
)


@settings(max_examples=150)
@given(st.lists(trees, max_size=5).map(tuple))
def test_args_roundtrip_exactly(args):
    payload, n = marshal_args(args)
    assert n == len(args)
    assert unmarshal_args(payload) == args


@settings(max_examples=60)
@given(
    arrays(
        dtype=st.sampled_from([np.float64, np.int64, np.int32, np.uint8]),
        shape=st.tuples(st.integers(0, 8), st.integers(0, 8)),
        elements=st.integers(min_value=0, max_value=100),
    )
)
def test_ndarray_roundtrip_preserves_dtype_shape_values(arr):
    payload, _ = marshal_args((arr,))
    (out,) = unmarshal_args(payload)
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


@settings(max_examples=60)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=30))
def test_payload_size_monotone_in_content(xs):
    """More arguments never shrink the payload."""
    smaller, _ = marshal_args(tuple(xs))
    larger, _ = marshal_args(tuple(xs) + (1.0,))
    assert len(larger) > len(smaller) or not xs
