"""Property tests: the reliable-AM retransmission schedule.

Three properties of the per-peer RTO, checked against the *real*
sublayer (a cluster whose fault plan eats every data packet, with the
retransmit instants observed on the wire):

* the gaps between successive retransmissions are nondecreasing
  (exponential backoff never shrinks),
* no gap ever exceeds ``max_timeout_us`` (the cap binds),
* an ack resets the peer's RTO to ``timeout_us`` (backoff state is
  per-channel progress, not history).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import RetryPolicy, install_am
from repro.errors import RetryExhaustedError, SimulationError
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan

EPS = 1e-6


def _retransmit_times(policy):
    """Send one message into a black hole; return the virtual times at
    which seq 0 hit the wire (original send + every retransmission)."""
    cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0, dst=1))
    eps = install_am(cluster, reliable=True, retry=policy)
    eps[1].register_handler("h", lambda *a: iter(()))

    times = []
    orig = cluster.network.transmit

    def spy(pkt, **kw):
        if pkt.kind.startswith("am.") and pkt.dst == 1 and pkt.seq == 0:
            times.append(cluster.sim.now)
        return orig(pkt, **kw)

    cluster.network.transmit = spy

    def sender(node):
        yield from node.service("am").send_short(1, "h", nbytes=16)

    cluster.launch(0, sender(cluster.nodes[0]))
    with pytest.raises(RetryExhaustedError):
        cluster.run()
    return times


policies = st.builds(
    RetryPolicy,
    timeout_us=st.floats(min_value=10.0, max_value=500.0),
    backoff=st.floats(min_value=1.0, max_value=4.0),
    max_timeout_us=st.just(0.0),  # overwritten below: must be >= timeout_us
    max_retries=st.integers(min_value=2, max_value=8),
).flatmap(
    lambda p: st.floats(min_value=1.0, max_value=8.0).map(
        lambda cap_mult: RetryPolicy(
            timeout_us=p.timeout_us,
            backoff=p.backoff,
            max_timeout_us=p.timeout_us * cap_mult,
            max_retries=p.max_retries,
        )
    )
)


@settings(max_examples=20, deadline=None)
@given(policies)
def test_backoff_is_monotone_and_capped(policy):
    times = _retransmit_times(policy)
    # original send + max_retries resends, then exhaustion
    assert len(times) == policy.max_retries + 1
    gaps = [b - a for a, b in zip(times, times[1:])]
    # first resend comes after exactly the base timeout
    assert gaps[0] == pytest.approx(policy.timeout_us)
    for earlier, later in zip(gaps, gaps[1:]):
        assert later >= earlier - EPS          # never shrinks
    for k, gap in enumerate(gaps):
        assert gap <= policy.max_timeout_us + EPS  # cap binds
        # and each gap is exactly the clamped exponential schedule
        assert gap == pytest.approx(
            min(policy.timeout_us * policy.backoff**k, policy.max_timeout_us)
        )


@settings(max_examples=15, deadline=None)
@given(
    st.floats(min_value=50.0, max_value=300.0),   # base timeout
    st.floats(min_value=1.5, max_value=3.0),      # backoff
)
def test_rto_resets_after_ack(timeout_us, backoff):
    """Delay every ack beyond several timeouts: the channel backs off,
    then the ack lands and progress resets the RTO to the base value —
    observable as the *next* message's first retransmit gap being the
    base timeout again, not the backed-off one."""
    policy = RetryPolicy(
        timeout_us=timeout_us, backoff=backoff,
        max_timeout_us=timeout_us * 16, max_retries=50,
    )
    # the second retransmit fires at timeout * (1 + backoff) after the
    # send: hold the ack until just past it so two timeouts fire first
    ack_delay = timeout_us * (1.0 + backoff + 0.5)
    cluster = Cluster(
        2, faults=FaultPlan().delay("am.ack", rate=1.0, delay_us=ack_delay)
    )
    eps = install_am(cluster, reliable=True, retry=policy)
    eps[1].register_handler("h", lambda *a: iter(()))

    times = {0: [], 1: []}
    orig = cluster.network.transmit

    def spy(pkt, **kw):
        if pkt.kind.startswith("am.short") and pkt.dst == 1:
            times[pkt.seq].append(cluster.sim.now)
        return orig(pkt, **kw)

    cluster.network.transmit = spy

    from repro.sim.account import Category
    from repro.sim.effects import Charge

    def server(node):
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    def sender(node):
        ep = node.service("am")
        yield from ep.send_short(1, "h", nbytes=16)
        # acks are NIC-level: they are processed on delivery, not via the
        # inbox — just let virtual time pass until the delayed ack lands
        yield Charge(timeout_us * 10.0, Category.CPU)
        assert not ep._unacked.get(1)          # the ack did land
        assert ep._retries.get(1, 0) == 0      # progress cleared the count
        assert ep._rto.get(1) == pytest.approx(policy.timeout_us)
        yield from ep.send_short(1, "h", nbytes=16)
        yield Charge(timeout_us * 10.0, Category.CPU)

    cluster.launch(1, server(cluster.nodes[1]), daemon=True)
    cluster.launch(0, sender(cluster.nodes[0]))
    cluster.run(watchdog_us=True)
    # seq 0 backed off before its ack arrived...
    gaps0 = [b - a for a, b in zip(times[0], times[0][1:])]
    assert len(gaps0) >= 2
    assert gaps0[1] == pytest.approx(timeout_us * backoff)
    # ...and seq 1, sent after the reset, starts from the base timeout
    gaps1 = [b - a for a, b in zip(times[1], times[1][1:])]
    assert gaps1, "second message never retransmitted (ack_delay too short?)"
    assert gaps1[0] == pytest.approx(timeout_us)


def test_validation_rejects_bad_policies():
    with pytest.raises(SimulationError):
        RetryPolicy(timeout_us=0.0).validate()
    with pytest.raises(SimulationError):
        RetryPolicy(backoff=0.5).validate()
    with pytest.raises(SimulationError):
        RetryPolicy(timeout_us=100.0, max_timeout_us=50.0).validate()
    with pytest.raises(SimulationError):
        RetryPolicy(max_retries=-1).validate()
