"""Property tests over the language runtimes themselves."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.ccpp.collective import CCBarrier
from repro.ccpp.gp import ObjectGlobalPtr
from repro.machine.cluster import Cluster
from repro.sim.account import Category
from repro.sim.effects import Charge
from repro.splitc import SplitCRuntime


@processor_class
class EchoService(ProcessorObject):
    """Round-trips arbitrary marshalled arguments through a real RMI."""

    @remote(threaded=True)
    def echo(self, payload):
        return payload

    @remote(atomic=True)
    def accumulate(self, x):
        self.total = getattr(self, "total", 0.0) + x
        return self.total


args_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**60), max_value=2**60),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.lists(st.integers(min_value=0, max_value=9), max_size=6),
    st.dictionaries(st.text(max_size=5), st.integers(0, 99), max_size=3),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(args_strategy, min_size=1, max_size=5))
def test_rmi_round_trips_arbitrary_payloads(payloads):
    """Every payload shipped through the full wire path comes back equal."""
    rt = CCppRuntime(Cluster(2))
    got = []

    def program(ctx):
        gp = yield from ctx.create(1, EchoService)
        for p in payloads:
            got.append((yield from ctx.rmi(gp, "echo", p)))

    rt.launch(0, program)
    rt.run()
    assert got == payloads


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=2, max_value=4),
)
def test_atomic_accumulation_from_many_nodes(values, n_clients):
    """Concurrent atomic RMIs from several nodes sum correctly."""
    rt = CCppRuntime(Cluster(n_clients + 1))
    svc_id = rt._create_local(0, "EchoService", ())
    gp = ObjectGlobalPtr(0, svc_id, "EchoService")

    def client(ctx, mine):
        for v in mine:
            yield from ctx.rmi(gp, "accumulate", v)

    for c in range(n_clients):
        mine = values[c::n_clients]
        if mine:
            rt.launch(c + 1, lambda ctx, m=mine: client(ctx, m))
    rt.run()
    total = getattr(rt.object_table(0).get(svc_id), "total", 0.0)
    assert total == np.float64(0.0) + sum(values) or abs(total - sum(values)) < 1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=300, allow_nan=False), min_size=2, max_size=4),
    st.integers(min_value=1, max_value=4),
)
def test_ccbarrier_no_early_release_random_arrivals(delays, rounds):
    """No participant leaves a barrier round before the slowest arrival."""
    n = len(delays)
    rt = CCppRuntime(Cluster(n))
    barrier_id = rt._create_local(0, "CCBarrier", (n,))
    gp = ObjectGlobalPtr(0, barrier_id, "CCBarrier")
    arrive_at: dict[tuple[int, int], float] = {}
    leave_at: dict[tuple[int, int], float] = {}

    def program(ctx, delay):
        for r in range(rounds):
            yield Charge(delay, Category.CPU)
            arrive_at[(ctx.my_node, r)] = ctx.node.sim.now
            yield from CCBarrier.wait(ctx, gp)
            leave_at[(ctx.my_node, r)] = ctx.node.sim.now

    for nid, d in enumerate(delays):
        rt.launch(nid, lambda ctx, dd=d: program(ctx, dd))
    rt.run()
    for r in range(rounds):
        slowest = max(arrive_at[(nid, r)] for nid in range(n))
        for nid in range(n):
            assert leave_at[(nid, r)] >= slowest - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # writer node
            st.integers(min_value=0, max_value=3),   # target node
            st.integers(min_value=0, max_value=7),   # slot
            st.floats(min_value=-9, max_value=9, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_splitc_random_writes_reach_memory(ops):
    """A random cross-node write plan lands exactly as a sequential
    interpretation predicts (last write per slot wins within a writer;
    across writers, slots are partitioned to keep the oracle exact)."""
    cluster = Cluster(4)
    rt = SplitCRuntime(cluster)
    for q in range(4):
        rt.memory(q).alloc("w", 8 * 4)

    # partition slots by writer so concurrent writers never collide
    plan = [
        (writer, target, writer * 8 + slot, value)
        for writer, target, slot, value in ops
    ]
    expect: dict[tuple[int, int], float] = {}
    for writer, target, slot, value in plan:
        expect[(target, slot)] = value

    def program(proc):
        mine = [p for p in plan if p[0] == proc.my_node]
        for _, target, slot, value in mine:
            yield from proc.write(proc.gptr(target, "w", slot), value)
        yield from proc.barrier()

    rt.run_spmd(program)
    for (target, slot), value in expect.items():
        assert rt.memory(target).region("w")[slot] == value
