"""Property tests: the stub cache and persistent buffers converge.

DESIGN.md's promised invariants: with caching on, any sequence of RMIs
pays at most one cold miss per (caller node, callee node, method); after
the first payload-bearing call of a pair, every further one reuses the
persistent R-buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.ccpp.gp import ObjectGlobalPtr
from repro.machine.cluster import Cluster
from repro.sim.account import CounterNames


@processor_class
class CacheProbe(ProcessorObject):
    @remote(threaded=True)
    def alpha(self, x):
        return x

    @remote(threaded=True)
    def beta(self, x):
        return -x

    @remote
    def gamma(self):
        return 0


# a call plan: list of (callee node in {1,2}, method index in {0,1,2})
plans = st.lists(
    st.tuples(st.integers(1, 2), st.integers(0, 2)), min_size=1, max_size=25
)

_METHODS = ("alpha", "beta", "gamma")


@settings(max_examples=25, deadline=None)
@given(plans)
def test_at_most_one_cold_miss_per_caller_method_pair(plan):
    rt = CCppRuntime(Cluster(3))
    probes = {}
    for nid in (1, 2):
        obj_id = rt._create_local(nid, "CacheProbe", ())
        probes[nid] = ObjectGlobalPtr(nid, obj_id, "CacheProbe")

    def program(ctx):
        for nid, m in plan:
            args = (1,) if m < 2 else ()
            yield from ctx.rmi(probes[nid], _METHODS[m], *args)

    rt.launch(0, program)
    rt.run()

    counters = rt.cluster.aggregate_counters()
    distinct_pairs = len({(nid, m) for nid, m in plan})
    cold = counters.get(CounterNames.RMI_COLD)
    warm = counters.get(CounterNames.RMI_WARM)
    assert cold == distinct_pairs
    assert cold + warm == len(plan)


@settings(max_examples=20, deadline=None)
@given(plans)
def test_payload_calls_reuse_persistent_buffers(plan):
    rt = CCppRuntime(Cluster(3))
    probes = {}
    for nid in (1, 2):
        obj_id = rt._create_local(nid, "CacheProbe", ())
        probes[nid] = ObjectGlobalPtr(nid, obj_id, "CacheProbe")

    def program(ctx):
        for nid, m in plan:
            args = (1,) if m < 2 else ()
            yield from ctx.rmi(probes[nid], _METHODS[m], *args)

    rt.launch(0, program)
    rt.run()

    counters = rt.cluster.aggregate_counters()
    payload_calls = [(nid, m) for nid, m in plan if m < 2]
    distinct_payload_pairs = len(set(payload_calls))
    assert counters.get(CounterNames.RBUF_ALLOC) == distinct_payload_pairs
    assert counters.get(CounterNames.RBUF_REUSE) == (
        len(payload_calls) - distinct_payload_pairs
    )
