"""Property tests: locks preserve mutual exclusion under arbitrary
interleavings of yielding critical sections."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cluster import Cluster
from repro.sim.account import Category
from repro.sim.effects import Charge
from repro.threads.api import yield_now
from repro.threads.sync import Lock, Semaphore


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # yields inside section
            st.floats(min_value=0.0, max_value=20.0),  # charge inside section
        ),
        min_size=1,
        max_size=8,
    )
)
def test_lock_mutual_exclusion(sections):
    cluster = Cluster(1)
    node = cluster.nodes[0]
    lock = Lock(node)
    inside = {"count": 0, "max": 0}
    completions = []

    def body(tag, n_yields, charge_us):
        yield from lock.acquire()
        inside["count"] += 1
        inside["max"] = max(inside["max"], inside["count"])
        for _ in range(n_yields):
            yield from yield_now(node)
        if charge_us:
            yield Charge(charge_us, Category.CPU)
        inside["count"] -= 1
        yield from lock.release()
        completions.append(tag)

    for tag, (n_yields, charge_us) in enumerate(sections):
        cluster.launch(0, body(tag, n_yields, charge_us))
    cluster.run()

    assert inside["max"] == 1, "two threads were inside the lock at once"
    assert sorted(completions) == list(range(len(sections)))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),   # semaphore capacity
    st.integers(min_value=1, max_value=10),  # threads
)
def test_semaphore_never_exceeds_capacity(capacity, n_threads):
    cluster = Cluster(1)
    node = cluster.nodes[0]
    sem = Semaphore(node, capacity)
    inside = {"count": 0, "max": 0}

    def body():
        yield from sem.down()
        inside["count"] += 1
        inside["max"] = max(inside["max"], inside["count"])
        yield from yield_now(node)
        inside["count"] -= 1
        yield from sem.up()

    for _ in range(n_threads):
        cluster.launch(0, body())
    cluster.run()
    assert inside["max"] <= capacity


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=6))
def test_sync_cell_readers_see_single_value(delays):
    from repro.threads.sync import SyncCell

    cluster = Cluster(1)
    node = cluster.nodes[0]
    cell = SyncCell(node)
    seen = []

    def reader(d):
        yield Charge(d, Category.CPU)
        value = yield from cell.read()
        seen.append(value)

    def writer():
        yield Charge(25.0, Category.CPU)
        yield from cell.write("the-value")

    for d in delays:
        cluster.launch(0, reader(d))
    cluster.launch(0, writer())
    cluster.run()
    assert seen == ["the-value"] * len(delays)
