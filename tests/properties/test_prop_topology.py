"""Property tests: contended-fabric invariants.

Link contention changes *when* packets land, but two things must
survive any traffic pattern:

* per-(src, dst) FIFO — two packets on the same channel never reorder,
  because they take the same deterministic route and per-link busy-until
  timestamps are monotone in transmit order;
* determinism — the same workload over a fresh identical topology gives
  bit-equal delivery schedules and link statistics.

And under a seeded :class:`FaultPlan` whose delay rules *can* reorder a
raw channel (that is their documented semantics), the reliable AM
sublayer must restore per-channel in-order processing on a contended
fabric exactly as it does on the flat one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import install_am
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.machine.network import Packet

TOPOLOGIES = ("fattree:arity=4,fatness=2", "ring", "fattree:arity=8")

# raw traffic: (src, dst, nbytes) triples on a 8-node cluster
traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=4096),
    ),
    min_size=1,
    max_size=40,
)

topology_specs = st.sampled_from(TOPOLOGIES)


def _inject(spec, ops):
    """Send raw packets through a contended fabric; returns the cluster
    and the delivery log [(src, dst, pid, arrival)] in delivery order."""
    cluster = Cluster(8, topology=spec)
    log = []
    for node in cluster.nodes:
        def filt(packet, _node=node):
            log.append((packet.src, packet.dst, packet.pid, packet.arrival_time))
            return (packet,)
        node.deliver_filter = filt
    sent = []
    for src, dst, nbytes in ops:
        pkt = Packet(src=src, dst=dst, kind="prop", payload=None, nbytes=nbytes)
        sent.append(pkt.pid)
        cluster.network.transmit(pkt)
    cluster.run()
    return cluster, sent, log


@settings(max_examples=40, deadline=None)
@given(topology_specs, traffic)
def test_per_channel_fifo_under_contention(spec, ops):
    """Packets on one (src, dst) channel are delivered in send order,
    no matter how much cross-traffic queues on shared links."""
    _, sent, log = _inject(spec, ops)
    assert len(log) == len(ops)
    order = {pid: i for i, (_, _, pid, _) in enumerate(log)}
    by_channel: dict[tuple[int, int], list[int]] = {}
    for pid, (src, dst, _) in zip(sent, ops):
        by_channel.setdefault((src, dst), []).append(order[pid])
    for positions in by_channel.values():
        assert positions == sorted(positions)


@settings(max_examples=40, deadline=None)
@given(topology_specs, traffic)
def test_arrivals_monotone_per_channel(spec, ops):
    """Later sends on a channel never arrive earlier (busy-until is
    monotone along a fixed route)."""
    _, sent, log = _inject(spec, ops)
    arrivals = {pid: t for (_, _, pid, t) in log}
    last: dict[tuple[int, int], float] = {}
    for pid, (src, dst, _) in zip(sent, ops):
        t = arrivals[pid]
        assert t >= last.get((src, dst), 0.0)
        last[(src, dst)] = t


@settings(max_examples=25, deadline=None)
@given(topology_specs, traffic)
def test_contended_runs_are_deterministic(spec, ops):
    """Identical workload + fresh identical fabric = bit-equal schedule,
    link occupancy, and route tables."""
    a_cluster, _, a_log = _inject(spec, ops)
    b_cluster, _, b_log = _inject(spec, ops)
    # pids differ across runs (global counter); compare order and times
    assert [(s, d, t) for s, d, _, t in a_log] == [(s, d, t) for s, d, _, t in b_log]
    assert a_cluster.sim.now == b_cluster.sim.now
    a_topo, b_topo = a_cluster.topology, b_cluster.topology
    assert a_topo.link_stats() == b_topo.link_stats()
    assert a_topo.busy_until == b_topo.busy_until


@settings(max_examples=25, deadline=None)
@given(topology_specs, traffic)
def test_routes_deterministic_across_instances(spec, ops):
    a = Cluster(8, topology=spec).topology
    b = Cluster(8, topology=spec).topology
    for src, dst, _ in ops:
        assert a.route(src, dst) == b.route(src, dst)


# AM workload for the fault/reliable case: (sender, receiver, payload
# bytes — short AMs cap at the 64-byte frame)
am_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=8, max_value=64),
    ),
    min_size=1,
    max_size=12,
)


def _run_reliable(spec, ops, fault_seed):
    """AM traffic with reliable delivery over a delaying FaultPlan on a
    contended fabric; returns the per-receiver handling log."""
    plan = FaultPlan(seed=fault_seed).delay(
        "am.", rate=0.5, delay_us=200.0, jitter_us=150.0
    )
    cluster = Cluster(4, topology=spec, faults=plan)
    eps = install_am(cluster, reliable=True)
    handled = []

    def h(ep, src, frame):
        handled.append((src, ep.node.nid, frame.args[0]))
        return
        yield

    for ep in eps:
        ep.register_handler("h", h)

    def server(node):
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    by_sender: dict[int, list] = {}
    chan_seq: dict[tuple[int, int], int] = {}
    for sender, receiver, nbytes in ops:
        seq = chan_seq.get((sender, receiver), 0)
        chan_seq[(sender, receiver)] = seq + 1
        by_sender.setdefault(sender, []).append((receiver, nbytes, seq))

    def sender_body(node, plan_ops):
        ep = node.service("am")
        for receiver, nbytes, seq in plan_ops:
            yield from ep.send_short(receiver, "h", args=(seq,), nbytes=nbytes)

    for nid in range(4):
        cluster.launch(nid, server(cluster.nodes[nid]), daemon=True)
    for sender, plan_ops in by_sender.items():
        cluster.launch(sender, sender_body(cluster.nodes[sender], plan_ops))
    cluster.run()
    return cluster, handled


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(("fattree:arity=4,fatness=2", "ring")),
    am_ops,
    st.integers(min_value=1, max_value=5),
)
def test_reliable_am_restores_fifo_under_faultplan_delays(spec, ops, seed):
    """FaultPlan delay+jitter may reorder the raw channel (documented);
    the reliable sublayer must hand messages to handlers in per-channel
    send order anyway — also on a contended hierarchical fabric."""
    cluster, handled = _run_reliable(spec, ops, seed)
    assert len(handled) == len(ops)
    # per-channel sequence numbers must be handled 0,1,2,... in order
    seen: dict[tuple[int, int], list[int]] = {}
    for src, dst, seq in handled:
        seen.setdefault((src, dst), []).append(seq)
    for positions in seen.values():
        assert positions == list(range(len(positions)))
    # determinism: re-running the identical seeded setup reproduces the
    # exact handling sequence
    _, handled2 = _run_reliable(spec, ops, seed)
    assert handled == handled2
