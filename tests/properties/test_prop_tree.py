"""Properties of the tree collectives and the RMA layer.

Two families:

* **batched-tier identity** — the tree and RMA handlers register no
  fast forms, so a run under the batched tier must be bit-identical to
  the reference core (results *and* final virtual time) even while the
  surrounding Split-C runtime's own fast forms are active;
* **faulted-fabric correctness** — over a lossy/jittery fabric with the
  reliable AM sublayer on, every collective still produces the exact
  linear-oracle values (reliability restores ordered exactly-once
  delivery; the collectives sit entirely above it).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.rma import install_rma
from repro.splitc import SplitCRuntime
from repro.splitc.collective import make_tree


def _tree_workload(n: int, radix: int, *, faults=None, reliable=False, batched=None):
    """Rounds of bcast + allreduce + barrier; returns (outs, final virtual
    time)."""
    cluster = Cluster(n, faults=faults)
    rt = SplitCRuntime(cluster, reliable=reliable, batched=batched)
    tree = make_tree(rt, radix=radix)
    outs: dict[int, list[float]] = {}

    def prog(proc):
        me = proc.my_node
        seen = []
        for r in range(3):
            seen.append((yield from tree.bcast(me, r % n, float(r + 1))))
            seen.append((yield from tree.allreduce(me, float(me + r))))
            yield from tree.barrier(me)
        outs[me] = seen

    rt.run_spmd(prog)
    return outs, cluster.sim.now


def _rma_workload(*, batched=None):
    """Puts/accumulates/gets between two nodes; returns (values, time)."""
    cluster = Cluster(2)
    rt = SplitCRuntime(cluster, batched=batched)
    rma = install_rma(cluster, endpoints=rt.endpoints)
    got: dict = {}

    def prog(proc):
        me = proc.my_node
        win = rma.process(me)
        yield from win.register("w", 8)
        yield from proc.barrier()
        other = 1 - me
        h = yield from win.put(other, "w", me, [float(me + 1)] * 2, notify=True)
        yield from win.wait_remote(h)
        h = yield from win.accumulate(other, "w", 2, [10.0])
        yield from win.wait_remote(h)
        yield from win.wait_notify("w", 1)
        yield from proc.barrier()
        got[me] = list((yield from win.get(other, "w", 0, 4)))
        yield from proc.barrier()

    rt.run_spmd(prog)
    return got, cluster.sim.now


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    radix=st.integers(min_value=1, max_value=4),
)
def test_tree_batched_tier_is_bit_identical(n, radix):
    reference = _tree_workload(n, radix, batched=False)
    batched = _tree_workload(n, radix, batched=True)
    assert batched == reference


def test_rma_batched_tier_is_bit_identical():
    assert _rma_workload(batched=False) == _rma_workload(batched=True)


def _expected(n: int) -> list[float]:
    return [v for r in range(3) for v in (float(r + 1), float(sum(range(n)) + n * r))]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=5),
    radix=st.integers(min_value=1, max_value=3),
)
def test_tree_correct_over_lossy_fabric_with_reliable_am(seed, n, radix):
    """Drops + delay/jitter reorder and eat tree messages; the reliable
    sublayer must make the collectives' values exact anyway."""
    plan = (
        FaultPlan(seed=seed)
        .drop("am.", rate=0.05)
        .delay("am.", rate=0.3, delay_us=3.0, jitter_us=25.0)
    )
    outs, _ = _tree_workload(n, radix, faults=plan, reliable=True)
    assert outs == {nid: _expected(n) for nid in range(n)}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tree_deterministic_replay(seed):
    """Same seed, same fault plan -> identical results and virtual time."""
    plan = lambda: FaultPlan(seed=seed).delay(
        "am.", rate=0.5, delay_us=2.0, jitter_us=15.0
    )
    a = _tree_workload(4, 2, faults=plan(), reliable=True)
    b = _tree_workload(4, 2, faults=plan(), reliable=True)
    assert a == b
