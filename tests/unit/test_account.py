"""Unit tests for time accounting and counters."""

import pytest

from repro.sim.account import Category, CounterNames, Counters, TimeAccount


class TestTimeAccount:
    def test_starts_empty(self):
        acct = TimeAccount()
        assert acct.total() == 0.0
        for c in Category:
            assert acct.get(c) == 0.0

    def test_add_accumulates(self):
        acct = TimeAccount()
        acct.add(Category.CPU, 5.0)
        acct.add(Category.CPU, 2.5)
        assert acct.get(Category.CPU) == 7.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeAccount().add(Category.NET, -1.0)

    def test_total_with_and_without_idle(self):
        acct = TimeAccount()
        acct.add(Category.CPU, 10.0)
        acct.add(Category.IDLE, 4.0)
        assert acct.total() == 14.0
        assert acct.total(include_idle=False) == 10.0

    def test_snapshot_is_independent_copy(self):
        acct = TimeAccount()
        acct.add(Category.NET, 1.0)
        snap = acct.snapshot()
        acct.add(Category.NET, 1.0)
        assert snap[Category.NET] == 1.0
        assert acct.get(Category.NET) == 2.0

    def test_since_returns_delta(self):
        acct = TimeAccount()
        acct.add(Category.RUNTIME, 3.0)
        snap = acct.snapshot()
        acct.add(Category.RUNTIME, 4.0)
        acct.add(Category.CPU, 1.0)
        delta = acct.since(snap)
        assert delta[Category.RUNTIME] == 4.0
        assert delta[Category.CPU] == 1.0

    def test_merge_sums_categories(self):
        a, b = TimeAccount(), TimeAccount()
        a.add(Category.CPU, 1.0)
        b.add(Category.CPU, 2.0)
        b.add(Category.THREAD_SYNC, 0.5)
        a.merge(b)
        assert a.get(Category.CPU) == 3.0
        assert a.get(Category.THREAD_SYNC) == 0.5

    def test_breakdown_folds_idle_into_net(self):
        acct = TimeAccount()
        acct.add(Category.NET, 2.0)
        acct.add(Category.IDLE, 3.0)
        out = acct.breakdown()
        assert out["net"] == 5.0
        assert "idle" not in out

    def test_breakdown_can_keep_idle(self):
        acct = TimeAccount()
        acct.add(Category.IDLE, 3.0)
        out = acct.breakdown(fold_idle_into_net=False)
        assert out["idle"] == 3.0
        assert out["net"] == 0.0


class TestCounters:
    def test_get_missing_is_zero(self):
        assert Counters().get("nope") == 0

    def test_inc_default_and_amount(self):
        c = Counters()
        c.inc("x")
        c.inc("x", 4)
        assert c.get("x") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().inc("x", -1)

    def test_since_includes_both_sides(self):
        c = Counters()
        c.inc("a", 2)
        snap = c.snapshot()
        c.inc("a")
        c.inc("b", 7)
        delta = c.since(snap)
        assert delta["a"] == 1
        assert delta["b"] == 7

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_counter_names_are_distinct(self):
        names = [
            getattr(CounterNames, attr)
            for attr in dir(CounterNames)
            if not attr.startswith("_")
        ]
        assert len(names) == len(set(names))


class TestCategory:
    def test_str_matches_paper_labels(self):
        assert str(Category.THREAD_MGMT) == "thread mgmt"
        assert str(Category.THREAD_SYNC) == "thread sync"
        assert str(Category.RUNTIME) == "runtime"

class TestCountersMergeValidation:
    def test_merge_rejects_negative_counts(self):
        """A producer that wrote ``counts`` directly and went negative
        must fail loudly at merge, not corrupt the totals silently."""
        bad = Counters()
        bad.counts["x"] = -1
        c = Counters()
        c.inc("x", 5)
        with pytest.raises(ValueError):
            c.merge(bad)
        # the failed merge must not have partially applied
        assert c.get("x") == 5

    def test_merge_keeps_defaultdict_semantics(self):
        """After a merge the receiver's counts must still self-initialise
        missing keys (merge must mutate its own defaultdict in place)."""
        src = Counters()
        src.inc("x", 2)
        c = Counters()
        c.merge(src)
        assert c.get("x") == 2
        # direct += on a never-seen counter must not raise KeyError
        c.counts["brand-new"] += 1
        assert c.get("brand-new") == 1
