"""Unit tests for Split-C ``all_store_sync`` and collective composition
with in-flight application stores."""

import pytest

from repro.machine.cluster import Cluster
from repro.splitc import SplitCRuntime, collective


def _runtime(n=4, region_size=16):
    cluster = Cluster(n)
    rt = SplitCRuntime(cluster)
    collective.ensure_scratch(rt)
    for q in range(n):
        rt.memory(q).alloc("x", region_size)
    return cluster, rt


def test_all_store_sync_guarantees_delivery():
    _, rt = _runtime()

    def program(proc):
        me = proc.my_node
        for q in range(proc.nprocs):
            if q != me:
                yield from proc.store(proc.gptr(q, "x", me), float(me + 1))
        yield from collective.all_store_sync(proc)
        arr = proc.local("x")
        return all(
            arr[q] == float(q + 1) for q in range(proc.nprocs) if q != me
        )

    assert rt.run_spmd(program) == [True] * 4


def test_all_store_sync_with_no_outstanding_stores():
    _, rt = _runtime()

    def program(proc):
        yield from collective.all_store_sync(proc)
        return True

    assert rt.run_spmd(program) == [True] * 4


def test_all_store_sync_repeated_rounds():
    _, rt = _runtime()

    def program(proc):
        me = proc.my_node
        target = (me + 1) % proc.nprocs
        for round_no in range(3):
            yield from proc.store(
                proc.gptr(target, "x", round_no), float(me + 10 * round_no)
            )
            yield from collective.all_store_sync(proc)
            src = (me - 1) % proc.nprocs
            assert proc.local("x")[round_no] == float(src + 10 * round_no)
        return True

    assert rt.run_spmd(program) == [True] * 4


def test_collectives_compose_with_bulk_app_stores():
    """Many application stores in flight must not corrupt a concurrent
    collective round (the failure mode the flag slots exist to avoid)."""
    _, rt = _runtime(region_size=64)

    def program(proc):
        me = proc.my_node
        # burst of one-way stores to everyone, never awaited directly
        for k in range(10):
            for q in range(proc.nprocs):
                if q != me:
                    yield from proc.store(proc.gptr(q, "x", me * 10 + k), 1.0)
        total = yield from collective.all_reduce_add(proc, float(me))
        yield from collective.all_store_sync(proc)
        landed = sum(
            proc.local("x")[q * 10 + k] == 1.0
            for q in range(proc.nprocs)
            if q != me
            for k in range(10)
        )
        return (total, landed)

    results = rt.run_spmd(program)
    assert all(t == 6.0 for t, _ in results)   # 0+1+2+3
    assert all(landed == 30 for _, landed in results)


def test_scratch_too_small_rejected():
    cluster = Cluster(4)
    rt = SplitCRuntime(cluster)
    for q in range(4):
        rt.memory(q).alloc(collective.SCRATCH_REGION, 2)
    with pytest.raises(Exception):
        collective.ensure_scratch(rt)
