"""Unit tests for the Active Messages layer."""

import pytest

from repro.am import AMEndpoint, install_am
from repro.errors import RuntimeStateError, SimulationError
from repro.machine.cluster import Cluster
from repro.machine.costs import SP2_COSTS
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge


def _cluster_with_am(n=2, **cluster_kw):
    cluster = Cluster(n, **cluster_kw)
    eps = install_am(cluster)
    return cluster, eps


def _poll_server(node):
    ep = node.service("am")
    while True:
        yield from ep.wait_and_poll()


class TestHandlers:
    def test_register_and_dispatch(self):
        cluster, eps = _cluster_with_am()
        seen = []

        def h(ep, src, frame):
            seen.append((src, frame.args))
            return
            yield

        eps[1].register_handler("h", h)

        def sender(node):
            yield from node.service("am").send_short(1, "h", args=(1, 2), nbytes=16)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        assert seen == [(0, (1, 2))]

    def test_duplicate_handler_rejected(self):
        _, eps = _cluster_with_am()
        eps[0].register_handler("x", lambda *a: None)
        with pytest.raises(RuntimeStateError):
            eps[0].register_handler("x", lambda *a: None)
        eps[0].register_handler("x", lambda *a: None, replace=True)

    def test_oversize_short_rejected_uniformly(self):
        """Any short frame past short_max_bytes is rejected — with or
        without a data payload (the old guard only fired with data and at
        ten times the limit)."""
        cluster, eps = _cluster_with_am()
        limit = cluster.costs.net.short_max_bytes

        def data_heavy(node):
            yield from node.service("am").send_short(1, "h", data=b"x" * (limit + 1))

        def args_heavy(node):
            # no data at all; nbytes override says the frame is too big
            yield from node.service("am").send_short(1, "h", nbytes=limit + 1)

        for body in (data_heavy, args_heavy):
            gen = body(cluster.nodes[0])
            with pytest.raises(RuntimeStateError, match="short frame"):
                next(gen)

    def test_short_limit_sizes_memoryview_payload_by_nbytes(self):
        """The 64-byte short-frame guard must size zero-copy memoryview
        payloads by ``nbytes``: ``len()`` of a multi-dimensional view
        counts the first axis only and would let oversize frames through."""
        import numpy as np

        from repro.am.frames import AMFrame

        cluster, eps = _cluster_with_am()
        limit = cluster.costs.net.short_max_bytes

        # 2 x 16 float64 view: len() == 2 but nbytes == 256 > limit
        wide = memoryview(np.zeros((2, 16), dtype=np.float64))
        assert len(wide) == 2 and wide.nbytes > limit
        assert AMFrame("h", (), wide).payload_bytes() == wide.nbytes

        def sender(node):
            yield from node.service("am").send_short(1, "h", data=wide)

        gen = sender(cluster.nodes[0])
        with pytest.raises(RuntimeStateError, match="short frame"):
            next(gen)

    def test_short_memoryview_within_limit_accepted(self):
        """A flat view whose nbytes fit the short frame goes through, and
        the handler reads the payload zero-copy."""
        cluster, eps = _cluster_with_am()
        got = []

        def h(ep, src, frame):
            got.append(bytes(frame.data))
            return
            yield

        eps[1].register_handler("h", h)
        payload = memoryview(bytearray(b"0123456789abcdef"))

        def sender(node):
            yield from node.service("am").send_short(1, "h", data=payload)

        def drain(node):
            yield from node.service("am").wait_and_poll()

        cluster.launch(1, drain(cluster.nodes[1]))
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        assert got == [b"0123456789abcdef"]

    def test_short_at_exact_limit_accepted(self):
        cluster, eps = _cluster_with_am()
        eps[1].register_handler("h", lambda *a: iter(()))
        limit = cluster.costs.net.short_max_bytes

        def sender(node):
            yield from node.service("am").send_short(1, "h", nbytes=limit)

        def drain(node):
            yield from node.service("am").wait_and_poll()

        cluster.launch(1, drain(cluster.nodes[1]))
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        assert cluster.network.packets_delivered == 1

    def test_unknown_handler_is_loud(self):
        cluster, eps = _cluster_with_am()

        def sender(node):
            yield from node.service("am").send_short(1, "ghost", nbytes=12)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        with pytest.raises(SimulationError):
            cluster.run()


class TestRoundTrip:
    def test_short_rtt_matches_calibration(self):
        """Minimal request/reply lands in the paper's 53-55 us band."""
        cluster, eps = _cluster_with_am()
        state = {"got": 0}

        def echo(ep, src, frame):
            yield from ep.send_short(src, "ack", nbytes=12)

        def ack(ep, src, frame):
            state["got"] += 1
            return
            yield

        for ep in eps:
            ep.register_handler("echo", echo)
            ep.register_handler("ack", ack)

        times = []

        def main(node):
            ep = node.service("am")
            for _ in range(3):
                t0 = node.sim.now
                want = state["got"] + 1
                yield from ep.send_short(1, "echo", nbytes=16)
                yield from ep.poll_until(lambda: state["got"] >= want)
                times.append(node.sim.now - t0)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, main(cluster.nodes[0]))
        cluster.run()
        for t in times:
            assert 50.0 <= t <= 58.0

    def test_bulk_carries_real_payload(self):
        cluster, eps = _cluster_with_am()
        landed = {}

        def sink(ep, src, frame):
            landed["data"] = frame.data
            return
            yield

        eps[1].register_handler("sink", sink)
        payload = bytes(range(256)) * 4

        def sender(node):
            yield from node.service("am").send_bulk(1, "sink", data=payload)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        assert landed["data"] == payload

    def test_bulk_slower_than_short_for_setup(self):
        """The bulk path costs ~15 us more in sender-side setup."""
        cluster, _ = _cluster_with_am()
        node = cluster.nodes[0]
        net = node.costs.net

        def sender(n):
            ep = n.service("am")
            t0 = n.sim.now
            yield from ep.send_short(1, "x", nbytes=16)
            t1 = n.sim.now
            yield from ep.send_bulk(1, "x", nbytes=16)
            t2 = n.sim.now
            assert (t2 - t1) - (t1 - t0) == pytest.approx(net.bulk_setup_cpu)

        # register no-op handler so unknown-handler check doesn't fire
        for ep in (node.service("am"), cluster.nodes[1].service("am")):
            ep.register_handler("x", lambda *a: iter(()))
        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(node))
        cluster.run()


class TestPolling:
    def test_empty_poll_charges_poll_cost(self):
        cluster, eps = _cluster_with_am(1)

        def body(node):
            yield from node.service("am").poll()

        cluster.launch(0, body(cluster.nodes[0]))
        cluster.run()
        assert cluster.nodes[0].account.get(Category.NET) == pytest.approx(
            cluster.costs.net.poll_empty_cpu
        )
        assert cluster.nodes[0].counters.get(CounterNames.POLLS) == 1

    def test_poll_drains_all_deliverable(self):
        cluster, eps = _cluster_with_am()
        count = {"n": 0}

        def h(ep, src, frame):
            count["n"] += 1
            return
            yield

        eps[1].register_handler("h", h)

        def sender(node):
            ep = node.service("am")
            for _ in range(4):
                yield from ep.send_short(1, "h", nbytes=12)
            yield Charge(1000.0, Category.CPU)  # let them all land

        def receiver(node):
            yield Charge(500.0, Category.CPU)  # everything queued meanwhile
            n = yield from node.service("am").poll()
            assert n == 4

        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.launch(1, receiver(cluster.nodes[1]))
        cluster.run()
        assert count["n"] == 4

    def test_queuing_delay_until_poll(self):
        """Messages wait in the inbox until the receiver polls — the
        queuing delay the paper identifies as a latency component."""
        cluster, eps = _cluster_with_am()
        handled_at = {}

        def h(ep, src, frame):
            handled_at["t"] = ep.node.sim.now
            return
            yield

        eps[1].register_handler("h", h)

        def sender(node):
            yield from node.service("am").send_short(1, "h", nbytes=12)

        def busy_receiver(node):
            yield Charge(400.0, Category.CPU)  # compute, no polling
            yield from node.service("am").poll()

        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.launch(1, busy_receiver(cluster.nodes[1]))
        cluster.run()
        assert handled_at["t"] >= 400.0

    def test_poll_on_send_services_inbox(self):
        """A send triggers a poll of the sender's own inbox."""
        cluster, eps = _cluster_with_am()
        seen = []

        def h(ep, src, frame):
            seen.append(ep.node.nid)
            return
            yield

        for ep in eps:
            ep.register_handler("h", h)

        def node0(node):
            ep = node.service("am")
            yield from ep.send_short(1, "h", nbytes=12)
            yield Charge(200.0, Category.CPU)  # node 1's message lands now
            # this send must service the queued message via poll-on-send
            yield from ep.send_short(1, "h", nbytes=12)

        def node1(node):
            ep = node.service("am")
            yield from ep.wait_and_poll()
            yield from ep.send_short(0, "h", nbytes=12)
            yield from ep.wait_and_poll()

        cluster.launch(0, node0(cluster.nodes[0]))
        cluster.launch(1, node1(cluster.nodes[1]))
        cluster.run()
        assert 0 in seen and seen.count(1) == 2

    def test_handlers_do_not_poll_recursively(self):
        """A handler's own send must not recursively dispatch handlers."""
        cluster, eps = _cluster_with_am()
        depth = {"now": 0, "max": 0}

        def h(ep, src, frame):
            depth["now"] += 1
            depth["max"] = max(depth["max"], depth["now"])
            yield from ep.send_short(src, "ack", nbytes=12)
            depth["now"] -= 1

        def ack(ep, src, frame):
            return
            yield

        for ep in eps:
            ep.register_handler("h", h)
            ep.register_handler("ack", ack)

        def sender(node):
            ep = node.service("am")
            for _ in range(3):
                yield from ep.send_short(1, "h", nbytes=12)
            yield from ep.poll_until(lambda: False if cluster.network.packets_sent < 6 else True)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        assert depth["max"] == 1


class TestCreditFlowControl:
    """Edge cases of the credit window (the paper's AM flow control)."""

    def _stream(self, n_msgs, *, window, reception="polling", final_polls=0):
        """``final_polls`` lets the sender absorb trailing credit refills
        (refills are applied at poll time, not delivery time)."""
        cluster = Cluster(2, costs=SP2_COSTS.with_net(credit_window=window))
        eps = install_am(cluster, reception=reception)
        handled = []

        def h(ep, src, frame):
            handled.append(frame.args[0])
            return
            yield

        eps[1].register_handler("h", h)

        def sender(node):
            ep = node.service("am")
            for i in range(n_msgs):
                yield from ep.send_short(1, "h", args=(i,), nbytes=16)
            for _ in range(final_polls):
                yield from ep.wait_and_poll()

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        return cluster, eps, handled

    def test_refill_at_exactly_half_window(self):
        """Consuming exactly half the window triggers one refill that
        restores the sender to a full window."""
        cluster, eps, handled = self._stream(2, window=4, final_polls=1)
        assert handled == [0, 1]
        # receiver sent one refill of window//2 = 2 -> sender back at 4
        assert eps[0]._credits[1] == 4
        assert eps[1]._consumed[0] == 0

    def test_below_half_window_no_refill(self):
        cluster, eps, handled = self._stream(1, window=4)
        assert handled == [0]
        assert eps[0]._credits[1] == 3  # one consumed, nothing refilled
        assert eps[1]._consumed[0] == 1

    def test_exhaustion_stalls_then_recovers(self):
        """More messages than the window: the sender must stall on
        credits and resume on refills, and every message still lands."""
        cluster, eps, handled = self._stream(9, window=2)
        assert handled == list(range(9))
        # conservation: consumed credits match refills minus outstanding
        assert 0 <= eps[0]._credits[1] <= 2

    def test_exhaustion_with_interrupt_reception(self):
        """Same exhaustion pattern under interrupt-mode reception (no
        poll-on-send; the spin in _acquire_credit does the polling)."""
        cluster, eps, handled = self._stream(9, window=2, reception="interrupt")
        assert handled == list(range(9))
        net = cluster.costs.net
        # each handled message paid the software-interrupt surcharge
        assert cluster.nodes[1].account.get(Category.NET) >= 9 * net.interrupt_cpu

    def test_loopback_bypasses_credits(self):
        """Self-sends never consume window credits (no refill protocol
        with yourself) — more sends than the window must not stall."""
        cluster, eps = _cluster_with_am(1, costs=SP2_COSTS.with_net(credit_window=2))
        handled = []

        def h(ep, src, frame):
            handled.append(frame.args[0])
            return
            yield

        eps[0].register_handler("h", h)

        def body(node):
            ep = node.service("am")
            for i in range(6):  # 3x the window
                yield from ep.send_short(0, "h", args=(i,), nbytes=16)
            yield from ep.poll_until(lambda: len(handled) >= 6)

        cluster.launch(0, body(cluster.nodes[0]))
        cluster.run()
        assert handled == list(range(6))
        assert 0 not in eps[0]._credits  # the bypass never touched the table

    def test_handler_replies_exempt_from_credits(self):
        """A handler's reply must not consume window credits (the
        request/reply protocol pre-reserves its slot) — otherwise a full
        window of requests could deadlock both sides."""
        cluster, eps = _cluster_with_am(2, costs=SP2_COSTS.with_net(credit_window=2))
        got = {"n": 0}

        def echo(ep, src, frame):
            yield from ep.send_short(src, "ack", nbytes=12)

        def ack(ep, src, frame):
            got["n"] += 1
            return
            yield

        for ep in eps:
            ep.register_handler("echo", echo)
            ep.register_handler("ack", ack)

        def main(node):
            ep = node.service("am")
            for i in range(6):
                want = got["n"] + 1
                yield from ep.send_short(1, "echo", nbytes=16)
                yield from ep.poll_until(lambda: got["n"] >= want)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, main(cluster.nodes[0]))
        cluster.run()
        assert got["n"] == 6  # 3x the window of round trips, no stall
        # replies rode reserved slots: node 1's balance never went below
        # its initial window (it only grows, from refills for the acks)
        assert eps[1]._credits.get(0, 2) >= 2
