"""Unit tests for the EM3D application."""

import numpy as np
import pytest

from repro.apps.em3d import (
    Em3dGraph,
    Em3dParams,
    reference_steps,
    run_ccpp_em3d,
    run_splitc_em3d,
)
from repro.apps.em3d.layout import Em3dLayout
from repro.errors import ReproError


@pytest.fixture(scope="module")
def small_graph():
    return Em3dGraph(Em3dParams(n_nodes=48, degree=4, n_procs=4, pct_remote=0.5, seed=11))


class TestGraph:
    def test_params_validation(self):
        with pytest.raises(ReproError):
            Em3dParams(n_nodes=10, n_procs=4).validate()  # not divisible
        with pytest.raises(ReproError):
            Em3dParams(pct_remote=1.5).validate()
        with pytest.raises(ReproError):
            Em3dParams(degree=0).validate()

    def test_bipartite(self, small_graph):
        half = small_graph.params.n_nodes // 2
        for n in small_graph.nodes:
            for v in n.neighbors:
                assert small_graph.nodes[v].is_e != n.is_e

    def test_degree_uniform(self, small_graph):
        for n in small_graph.nodes:
            assert len(n.neighbors) == small_graph.params.degree
            assert len(n.weights) == small_graph.params.degree

    def test_even_distribution(self, small_graph):
        p = small_graph.params
        per_proc = p.n_nodes // p.n_procs
        for q in range(p.n_procs):
            count = sum(1 for n in small_graph.nodes if n.proc == q)
            assert count == per_proc

    def test_remote_fraction_honored(self):
        for pct in (0.0, 0.5, 1.0):
            g = Em3dGraph(Em3dParams(n_nodes=80, degree=10, n_procs=4, pct_remote=pct))
            remote = sum(
                1
                for n in g.nodes
                for v in n.neighbors
                if g.nodes[v].proc != n.proc
            )
            total = sum(len(n.neighbors) for n in g.nodes)
            assert remote / total == pytest.approx(pct, abs=0.01)

    def test_value_slot_bijective(self, small_graph):
        seen = set()
        for n in small_graph.nodes:
            slot = small_graph.value_slot(n.gid)
            assert slot not in seen
            seen.add(slot)

    def test_deterministic_generation(self):
        p = Em3dParams(n_nodes=48, degree=4, n_procs=4, pct_remote=0.5, seed=5)
        a, b = Em3dGraph(p), Em3dGraph(p)
        assert np.array_equal(a.initial, b.initial)
        assert all(
            x.neighbors == y.neighbors and x.weights == y.weights
            for x, y in zip(a.nodes, b.nodes)
        )


class TestLayout:
    def test_ghost_slots_unique_per_proc(self, small_graph):
        layout = Em3dLayout(small_graph)
        for q in range(small_graph.params.n_procs):
            slots = []
            for phase in (0, 1):
                slots.extend(layout.plans[q][phase].ghost_slot.values())
            assert len(slots) == len(set(slots))

    def test_exports_mirror_imports(self, small_graph):
        layout = Em3dLayout(small_graph)
        for q in range(small_graph.params.n_procs):
            for phase in (0, 1):
                for reader, gids in layout.plans[q][phase].exports.items():
                    assert layout.plans[reader][phase].by_src[q] == gids

    def test_term_counts_consistent(self, small_graph):
        layout = Em3dLayout(small_graph)
        total_terms = sum(
            layout.plans[q][ph].n_local_terms + layout.plans[q][ph].n_remote_terms
            for q in range(4)
            for ph in (0, 1)
        )
        assert total_terms == small_graph.edge_terms_per_step


class TestExecution:
    @pytest.mark.parametrize("version", ["base", "ghost", "bulk"])
    def test_splitc_matches_reference(self, small_graph, version):
        ref = reference_steps(small_graph, 2)
        res = run_splitc_em3d(small_graph, steps=1, version=version, warmup_steps=1)
        assert np.allclose(res.values, ref)

    @pytest.mark.parametrize("version", ["base", "ghost", "bulk"])
    def test_ccpp_matches_reference(self, small_graph, version):
        ref = reference_steps(small_graph, 2)
        res = run_ccpp_em3d(small_graph, steps=1, version=version, warmup_steps=1)
        assert np.allclose(res.values, ref)

    def test_unknown_version_rejected(self, small_graph):
        with pytest.raises(ReproError):
            run_splitc_em3d(small_graph, version="turbo")
        with pytest.raises(ReproError):
            run_ccpp_em3d(small_graph, version="turbo")

    def test_optimizations_help_both_languages(self, small_graph):
        """ghost dramatically beats base; both languages benefit (§6)."""
        sc = {
            v: run_splitc_em3d(small_graph, steps=1, version=v).per_edge_us
            for v in ("base", "ghost")
        }
        cc = {
            v: run_ccpp_em3d(small_graph, steps=1, version=v).per_edge_us
            for v in ("base", "ghost")
        }
        assert sc["ghost"] < 0.6 * sc["base"]
        assert cc["ghost"] < 0.6 * cc["base"]

    def test_ccpp_slower_but_bounded(self, small_graph):
        """CC++ within the paper's 1-3x envelope on this workload."""
        for version in ("base", "ghost"):
            sc = run_splitc_em3d(small_graph, steps=1, version=version)
            cc = run_ccpp_em3d(small_graph, steps=1, version=version)
            ratio = cc.per_edge_us / sc.per_edge_us
            assert 1.0 < ratio < 3.5

    def test_breakdown_accounts_are_positive(self, small_graph):
        res = run_ccpp_em3d(small_graph, steps=1, version="base")
        assert res.breakdown["cpu"] > 0
        assert res.breakdown["net"] > 0
        assert res.breakdown["thread mgmt"] > 0
        assert res.breakdown["runtime"] > 0

    def test_splitc_has_no_thread_components(self, small_graph):
        res = run_splitc_em3d(small_graph, steps=1, version="base")
        assert res.breakdown["thread mgmt"] == 0.0
        assert res.breakdown["thread sync"] == 0.0
