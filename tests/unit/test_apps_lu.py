"""Unit tests for the blocked LU application."""

import numpy as np
import pytest
import scipy.linalg

from repro.apps.lu import (
    LuParams,
    LuWorkload,
    check_factorization,
    lu_nopivot,
    reference_lu,
    run_ccpp_lu,
    run_splitc_lu,
)
from repro.apps.lu.blocked import panel_l, panel_u
from repro.apps.lu.reference import assemble
from repro.errors import ReproError


@pytest.fixture(scope="module")
def work():
    return LuWorkload(LuParams(n=32, block=8, n_procs=4, seed=17))


class TestParams:
    def test_block_must_divide_n(self):
        with pytest.raises(ReproError):
            LuParams(n=100, block=16).validate()

    def test_proc_grid_square_for_4(self):
        assert LuParams(n_procs=4).proc_grid == (2, 2)

    def test_proc_grid_for_2(self):
        assert LuParams(n_procs=2).proc_grid == (1, 2)


class TestKernels:
    def test_lu_nopivot_reconstructs(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (8, 8)) + 8 * np.eye(8)
        packed = a.copy()
        lu_nopivot(packed)
        lower = np.tril(packed, -1) + np.eye(8)
        upper = np.triu(packed)
        assert np.allclose(lower @ upper, a)

    def test_lu_nopivot_zero_pivot_rejected(self):
        with pytest.raises(ReproError):
            lu_nopivot(np.zeros((4, 4)))

    def test_panel_solves(self):
        rng = np.random.default_rng(2)
        pivot = rng.uniform(-1, 1, (8, 8)) + 8 * np.eye(8)
        lu_nopivot(pivot)
        lower = np.tril(pivot, -1) + np.eye(8)
        upper = np.triu(pivot)
        a_ik = rng.uniform(-1, 1, (8, 8))
        a_kj = rng.uniform(-1, 1, (8, 8))
        assert np.allclose(panel_l(a_ik, pivot) @ upper, a_ik)
        assert np.allclose(lower @ panel_u(a_kj, pivot), a_kj)


class TestGeometry:
    def test_owner_2d_cyclic(self, work):
        assert work.owner(0, 0) == 0
        assert work.owner(0, 1) == 1
        assert work.owner(1, 0) == 2
        assert work.owner(1, 1) == 3
        assert work.owner(2, 2) == 0

    def test_every_block_owned_once(self, work):
        b = work.params.n_blocks
        counted = sum(len(work.owned_blocks(q)) for q in range(4))
        assert counted == b * b

    def test_needs_pivot_matches_panel_work(self, work):
        b = work.params.n_blocks
        for k in range(b):
            for q in range(4):
                has_panel = bool(work.panel_rows(q, k) or work.panel_cols(q, k))
                assert work.needs_pivot(q, k) == has_panel

    def test_interior_needs_cover_blocks(self, work):
        for k in range(work.params.n_blocks):
            for q in range(4):
                rows, cols = work.interior_needs(q, k)
                for (i, j) in work.interior_blocks(q, k):
                    assert i in rows and j in cols


class TestExecution:
    def test_reference_matches_scipy_shape(self, work):
        packed = reference_lu(work)
        assert check_factorization(work, packed)
        lower, upper = assemble(packed)
        x = scipy.linalg.solve_triangular(
            upper,
            scipy.linalg.solve_triangular(
                lower, np.ones(work.params.n), lower=True, unit_diagonal=True
            ),
            lower=False,
        )
        assert np.allclose(work.matrix @ x, np.ones(work.params.n))

    def test_splitc_matches_reference(self, work):
        ref = reference_lu(work)
        res = run_splitc_lu(work)
        assert np.allclose(res.packed, ref)
        assert check_factorization(work, res.packed)

    def test_ccpp_matches_reference(self, work):
        ref = reference_lu(work)
        res = run_ccpp_lu(work)
        assert np.allclose(res.packed, ref)
        assert check_factorization(work, res.packed)

    def test_ccpp_gap_in_paper_direction(self, work):
        sc = run_splitc_lu(work)
        cc = run_ccpp_lu(work)
        ratio = cc.elapsed_us / sc.elapsed_us
        assert 1.0 < ratio < 5.0

    def test_breakdowns_populated(self, work):
        sc = run_splitc_lu(work)
        cc = run_ccpp_lu(work)
        assert sc.breakdown["cpu"] > 0
        assert cc.breakdown["thread sync"] > 0
        # equal computational work is charged in both languages
        assert sc.breakdown["cpu"] == pytest.approx(cc.breakdown["cpu"])
