"""Unit tests for the Water application."""

import numpy as np
import pytest

from repro.apps.water import (
    WaterParams,
    WaterSystem,
    reference_water,
    run_ccpp_water,
    run_splitc_water,
)
from repro.apps.water.system import pair_interaction
from repro.errors import ReproError


@pytest.fixture(scope="module")
def system():
    return WaterSystem(WaterParams(n_molecules=16, n_procs=4, steps=2, seed=13))


class TestSystem:
    def test_params_validation(self):
        with pytest.raises(ReproError):
            WaterParams(n_molecules=10, n_procs=4).validate()
        with pytest.raises(ReproError):
            WaterParams(steps=0).validate()

    def test_block_distribution(self, system):
        assert system.owner(0) == 0
        assert system.owner(15) == 3
        assert system.n_local == 4
        assert list(system.local_range(1)) == [4, 5, 6, 7]
        assert system.local_index(6) == 2

    def test_pair_owner_is_first_owner(self, system):
        assert system.pair_owner(0, 5) == 0
        assert system.pair_owner(5, 9) == 1
        with pytest.raises(ReproError):
            system.pair_owner(5, 5)

    def test_no_overlapping_molecules(self, system):
        n = system.params.n_molecules
        for i in range(n):
            for j in range(i + 1, n):
                d = np.linalg.norm(system.positions[i] - system.positions[j])
                assert d > 0.5

    def test_expected_updates_consistent(self, system):
        """Every cross-processor pair produces exactly one remote update."""
        total = sum(
            system.expected_remote_force_updates(q) for q in range(4)
        )
        n = system.params.n_molecules
        cross = sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if system.owner(i) != system.owner(j)
        )
        assert total == cross


class TestPhysics:
    def test_forces_antisymmetric(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            pi, pj = rng.uniform(0, 3, 3), rng.uniform(4, 6, 3)
            f_ij, pot_ij = pair_interaction(pi, pj)
            f_ji, pot_ji = pair_interaction(pj, pi)
            assert np.allclose(f_ij, -f_ji)
            assert pot_ij == pytest.approx(pot_ji)

    def test_force_along_separation(self):
        pi, pj = np.array([0.0, 0.0, 0.0]), np.array([2.0, 0.0, 0.0])
        f, _ = pair_interaction(pi, pj)
        assert f[1] == 0.0 and f[2] == 0.0

    def test_repulsive_at_short_range(self):
        pi, pj = np.zeros(3), np.array([0.9, 0.0, 0.0])
        f, _ = pair_interaction(pi, pj)
        assert f[0] < 0  # pushes i away from j

    def test_attractive_at_long_range(self):
        pi, pj = np.zeros(3), np.array([2.0, 0.0, 0.0])
        f, _ = pair_interaction(pi, pj)
        assert f[0] > 0  # pulls i toward j


class TestReference:
    def test_momentum_conserved(self, system):
        _, vel, _ = reference_water(system, 3)
        initial = system.velocities.sum(axis=0)
        assert np.allclose(vel.sum(axis=0), initial, atol=1e-9)

    def test_steps_progress_positions(self, system):
        p1, _, _ = reference_water(system, 1)
        p2, _, _ = reference_water(system, 2)
        assert not np.allclose(p1, p2)


class TestExecution:
    @pytest.mark.parametrize("version", ["atomic", "prefetch"])
    def test_splitc_matches_reference(self, system, version):
        ref_pos, ref_vel, ref_pot = reference_water(system, system.params.steps)
        res = run_splitc_water(system, version=version)
        assert np.allclose(res.positions, ref_pos)
        assert np.allclose(res.velocities, ref_vel)
        assert res.potential == pytest.approx(ref_pot)

    @pytest.mark.parametrize("version", ["atomic", "prefetch"])
    def test_ccpp_matches_reference(self, system, version):
        ref_pos, _, ref_pot = reference_water(system, system.params.steps)
        res = run_ccpp_water(system, version=version)
        assert np.allclose(res.positions, ref_pos)
        assert res.potential == pytest.approx(ref_pot)

    def test_unknown_version_rejected(self, system):
        with pytest.raises(ReproError):
            run_splitc_water(system, version="magic")
        with pytest.raises(ReproError):
            run_ccpp_water(system, version="magic")

    def test_prefetch_reduces_messages_an_order_of_magnitude(self, system):
        """The paper's '10-fold reduction in remote accesses'."""
        from repro.sim.account import CounterNames

        atomic = run_splitc_water(system, version="atomic")
        prefetch = run_splitc_water(system, version="prefetch")
        msgs = CounterNames.MSG_SHORT
        atomic_msgs = atomic.counters.get(msgs, 0) + atomic.counters.get(
            CounterNames.MSG_BULK, 0
        )
        prefetch_msgs = prefetch.counters.get(msgs, 0) + prefetch.counters.get(
            CounterNames.MSG_BULK, 0
        )
        assert prefetch_msgs < atomic_msgs / 3

    def test_prefetch_faster_in_both_languages(self, system):
        sc_a = run_splitc_water(system, version="atomic").elapsed_us
        sc_p = run_splitc_water(system, version="prefetch").elapsed_us
        cc_a = run_ccpp_water(system, version="atomic").elapsed_us
        cc_p = run_ccpp_water(system, version="prefetch").elapsed_us
        assert sc_p < sc_a
        assert cc_p < cc_a

    def test_ccpp_gap_in_paper_band(self, system):
        sc = run_splitc_water(system, version="atomic").elapsed_us
        cc = run_ccpp_water(system, version="atomic").elapsed_us
        assert 1.2 < cc / sc < 7.0
