"""Unit: the content-addressed result cache — hit/miss/invalidation,
concurrent-writer safety, integrity re-hash, and size-capped LRU GC."""

import json
import os
import threading

import pytest

from repro.experiments import registry
from repro.experiments.cache import ResultCache, default_cache_root
from repro.experiments.scaling import ScalingPoint, ScalingResult
from repro.experiments.table4 import Table4Result


@pytest.fixture
def spec():
    return registry.get("scaling")


@pytest.fixture
def result():
    return ScalingResult(points=[ScalingPoint(20, 74.8, 206.8)])


class TestAddressing:
    def test_key_is_stable_and_param_sensitive(self, spec):
        c = ResultCache("/tmp/unused", version="1")
        k1 = c.key(spec, {"sizes": (20,)})
        assert k1 == c.key(spec, {"sizes": (20,)})
        assert k1 != c.key(spec, {"sizes": (20, 200)})

    def test_key_ignores_param_order_and_tuple_vs_list(self, spec):
        c = ResultCache("/tmp/unused", version="1")
        faults = registry.get("faults")
        assert c.key(faults, {"iters": 5, "drops": (0.0,)}) == c.key(
            faults, {"drops": [0.0], "iters": 5}
        )

    def test_key_depends_on_version_and_spec(self, spec):
        params = {"sizes": (20,)}
        assert ResultCache("/tmp/x", version="1").key(spec, params) != ResultCache(
            "/tmp/x", version="2"
        ).key(spec, params)
        c = ResultCache("/tmp/x", version="1")
        assert c.key(spec, {}) != c.key(registry.get("table1"), {})

    def test_default_root_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        assert default_cache_root() == tmp_path / "cc"


class TestLoadStore:
    def test_miss_then_hit_round_trips(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        params = spec.validate({"sizes": (20,)})
        assert c.load(spec, params) is None
        path = c.store(spec, params, result)
        assert path is not None and path.exists()
        back = c.load(spec, params)
        assert back == result
        assert (c.hits, c.misses, c.stores) == (1, 1, 1)

    def test_params_change_is_a_miss(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        c.store(spec, {"sizes": (20,)}, result)
        assert c.load(spec, {"sizes": (200,)}) is None

    def test_version_change_is_a_miss(self, tmp_path, spec, result):
        ResultCache(tmp_path, version="1.0").store(spec, {"sizes": (20,)}, result)
        assert ResultCache(tmp_path, version="1.1").load(spec, {"sizes": (20,)}) is None
        assert ResultCache(tmp_path, version="1.0").load(spec, {"sizes": (20,)}) == result

    def test_corrupt_file_is_a_miss(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        path = c.store(spec, {"sizes": (20,)}, result)
        path.write_text("{not json", encoding="utf-8")
        assert c.load(spec, {"sizes": (20,)}) is None

    def test_non_cacheable_spec_never_stores(self, tmp_path):
        trace = registry.get("trace")
        c = ResultCache(tmp_path)
        assert c.store(trace, {}, object()) is None
        assert c.load(trace, {}) is None
        assert c.stores == 0

    def test_envelope_is_readable_json_with_provenance(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="9.9")
        path = c.store(spec, spec.validate({"sizes": (20,)}), result)
        envelope = json.loads(path.read_text())
        assert envelope["spec"] == "scaling"
        assert envelope["version"] == "9.9"
        assert envelope["params"]["sizes"] == [20]
        assert ScalingResult.from_json(envelope["result"]) == result

    def test_table4_envelope_round_trips_none_fields(self, tmp_path):
        spec = registry.get("table4")
        c = ResultCache(tmp_path)
        result = Table4Result(am_rtt_us=54.4, mpl_rtt_us=None)
        c.store(spec, spec.validate(), result)
        assert c.load(spec, spec.validate()) == result


class TestConcurrentWriters:
    def test_temp_names_are_unique_per_call(self, tmp_path, spec):
        c = ResultCache(tmp_path, version="1")
        target = c.path(spec, {"sizes": (20,)})
        t1, t2 = ResultCache._tmp_path(target), ResultCache._tmp_path(target)
        # the regression: a shared "<key>.tmp" let two writers of the
        # same key interleave partial JSON before the rename
        assert t1 != t2
        assert t1.parent == t2.parent == target.parent
        assert str(os.getpid()) in t1.name

    def test_hammering_one_key_never_corrupts_it(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        params = spec.validate({"sizes": (20,)})
        n_threads, n_rounds = 8, 12
        barrier = threading.Barrier(n_threads)
        failures = []

        def writer():
            try:
                barrier.wait()
                for _ in range(n_rounds):
                    c.store(spec, params, result)
                    loaded = ResultCache(tmp_path, version="1").load(spec, params)
                    if loaded is not None and loaded != result:
                        failures.append(loaded)
            except Exception as exc:  # pragma: no cover - the test's point
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert c.load(spec, params) == result
        assert not list(tmp_path.glob("*/*.tmp"))  # every temp was renamed


class TestIntegrity:
    def test_tampered_payload_is_a_miss_and_is_deleted(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        params = spec.validate({"sizes": (20,)})
        path = c.store(spec, params, result)
        envelope = json.loads(path.read_text())
        envelope["result"]["points"][0]["sc_us"] = 999.0  # bit-rot
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert c.load(spec, params) is None
        assert c.integrity_failures == 1
        assert not path.exists()  # the bad envelope is gone
        # and a fresh store repairs the entry
        c.store(spec, params, result)
        assert c.load(spec, params) == result

    def test_pre_integrity_envelope_still_loads(self, tmp_path, spec, result):
        """Envelopes without a sha256 field (older writers) stay valid."""
        c = ResultCache(tmp_path, version="1")
        params = spec.validate({"sizes": (20,)})
        path = c.store(spec, params, result)
        envelope = json.loads(path.read_text())
        del envelope["sha256"]
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert c.load(spec, params) == result
        assert c.integrity_failures == 0


class TestGC:
    def _fill(self, cache, spec, result, sizes):
        paths = {}
        for i, size in enumerate(sizes):
            params = spec.validate({"sizes": (size,)})
            path = cache.store(spec, params, result)
            # deterministic, well-separated LRU clock
            os.utime(path, (1000.0 + i, 1000.0 + i))
            paths[size] = path
        return paths

    def test_noop_under_cap(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        self._fill(c, spec, result, [20, 200])
        report = c.gc(max_bytes=c.size_bytes())
        assert report.evicted == 0
        assert report.scanned == 2
        assert report.bytes_after == report.bytes_before

    def test_evicts_oldest_first_until_under_cap(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        paths = self._fill(c, spec, result, [20, 200, 2000])
        one_size = paths[20].stat().st_size
        report = c.gc(max_bytes=c.size_bytes() - 1)  # force evicting one
        assert report.evicted == 1
        assert report.evicted_paths == [paths[20]]  # oldest mtime
        assert not paths[20].exists() and paths[200].exists()
        assert report.bytes_before - report.bytes_after == one_size

    def test_hit_refreshes_the_lru_clock(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        paths = self._fill(c, spec, result, [20, 200])
        # a hit on the older entry makes the other one the eviction victim
        assert c.load(spec, spec.validate({"sizes": (20,)})) == result
        report = c.gc(max_bytes=c.size_bytes() - 1)
        assert report.evicted_paths == [paths[200]]
        assert paths[20].exists()

    def test_gc_sweeps_stale_temp_files(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="1")
        self._fill(c, spec, result, [20])
        stale = tmp_path / "scaling" / "deadbeef.12345.0.tmp"
        stale.write_text("{half an envel", encoding="utf-8")
        report = c.gc(max_bytes=10**9)
        assert not stale.exists()
        assert report.evicted == 0  # real envelopes untouched
