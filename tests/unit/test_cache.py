"""Unit: the content-addressed result cache — hit/miss/invalidation."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.cache import ResultCache, default_cache_root
from repro.experiments.scaling import ScalingPoint, ScalingResult
from repro.experiments.table4 import Table4Result


@pytest.fixture
def spec():
    return registry.get("scaling")


@pytest.fixture
def result():
    return ScalingResult(points=[ScalingPoint(20, 74.8, 206.8)])


class TestAddressing:
    def test_key_is_stable_and_param_sensitive(self, spec):
        c = ResultCache("/tmp/unused", version="1")
        k1 = c.key(spec, {"sizes": (20,)})
        assert k1 == c.key(spec, {"sizes": (20,)})
        assert k1 != c.key(spec, {"sizes": (20, 200)})

    def test_key_ignores_param_order_and_tuple_vs_list(self, spec):
        c = ResultCache("/tmp/unused", version="1")
        faults = registry.get("faults")
        assert c.key(faults, {"iters": 5, "drops": (0.0,)}) == c.key(
            faults, {"drops": [0.0], "iters": 5}
        )

    def test_key_depends_on_version_and_spec(self, spec):
        params = {"sizes": (20,)}
        assert ResultCache("/tmp/x", version="1").key(spec, params) != ResultCache(
            "/tmp/x", version="2"
        ).key(spec, params)
        c = ResultCache("/tmp/x", version="1")
        assert c.key(spec, {}) != c.key(registry.get("table1"), {})

    def test_default_root_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        assert default_cache_root() == tmp_path / "cc"


class TestLoadStore:
    def test_miss_then_hit_round_trips(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        params = spec.validate({"sizes": (20,)})
        assert c.load(spec, params) is None
        path = c.store(spec, params, result)
        assert path is not None and path.exists()
        back = c.load(spec, params)
        assert back == result
        assert (c.hits, c.misses, c.stores) == (1, 1, 1)

    def test_params_change_is_a_miss(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        c.store(spec, {"sizes": (20,)}, result)
        assert c.load(spec, {"sizes": (200,)}) is None

    def test_version_change_is_a_miss(self, tmp_path, spec, result):
        ResultCache(tmp_path, version="1.0").store(spec, {"sizes": (20,)}, result)
        assert ResultCache(tmp_path, version="1.1").load(spec, {"sizes": (20,)}) is None
        assert ResultCache(tmp_path, version="1.0").load(spec, {"sizes": (20,)}) == result

    def test_corrupt_file_is_a_miss(self, tmp_path, spec, result):
        c = ResultCache(tmp_path)
        path = c.store(spec, {"sizes": (20,)}, result)
        path.write_text("{not json", encoding="utf-8")
        assert c.load(spec, {"sizes": (20,)}) is None

    def test_non_cacheable_spec_never_stores(self, tmp_path):
        trace = registry.get("trace")
        c = ResultCache(tmp_path)
        assert c.store(trace, {}, object()) is None
        assert c.load(trace, {}) is None
        assert c.stores == 0

    def test_envelope_is_readable_json_with_provenance(self, tmp_path, spec, result):
        c = ResultCache(tmp_path, version="9.9")
        path = c.store(spec, spec.validate({"sizes": (20,)}), result)
        envelope = json.loads(path.read_text())
        assert envelope["spec"] == "scaling"
        assert envelope["version"] == "9.9"
        assert envelope["params"]["sizes"] == [20]
        assert ScalingResult.from_json(envelope["result"]) == result

    def test_table4_envelope_round_trips_none_fields(self, tmp_path):
        spec = registry.get("table4")
        c = ResultCache(tmp_path)
        result = Table4Result(am_rtt_us=54.4, mpl_rtt_us=None)
        c.store(spec, spec.validate(), result)
        assert c.load(spec, spec.validate()) == result
