"""Unit tests for CC++ building blocks: names, stubs, buffers, registry,
processor objects, global pointers."""

import pytest

from repro.ccpp.buffers import BufferManager
from repro.ccpp.gp import DataGlobalPtr, ObjectGlobalPtr
from repro.ccpp.names import MethodName, method_hash
from repro.ccpp.procobj import ProcessorObject, remote, remote_methods_of
from repro.ccpp.registry import processor_class, registered_class, registered_names
from repro.ccpp.stubs import CacheEntry, StubTable
from repro.errors import GlobalPointerError, RuntimeStateError
from repro.machine.cluster import Cluster


class TestNames:
    def test_hash_is_deterministic(self):
        assert method_hash("Foo::bar") == method_hash("Foo::bar")

    def test_hash_differs_across_names(self):
        names = [f"Cls{i}::method{j}" for i in range(10) for j in range(10)]
        hashes = {method_hash(n) for n in names}
        assert len(hashes) == len(names)

    def test_hash_is_64_bit(self):
        assert 0 <= method_hash("x") < 2**64

    def test_method_name_composition(self):
        assert MethodName.of("Counter", "add") == "Counter::add"


class TestGlobalPtrs:
    def test_object_ptr_typed(self):
        gp = ObjectGlobalPtr(1, 2, "Counter")
        assert gp.as_type("Base").cls == "Base"
        assert gp.as_type("Base").obj_id == 2

    def test_object_ptr_validation(self):
        with pytest.raises(GlobalPointerError):
            ObjectGlobalPtr(-1, 0)
        with pytest.raises(GlobalPointerError):
            ObjectGlobalPtr(0, -1)

    def test_data_ptr_element_arithmetic_only(self):
        gp = DataGlobalPtr(1, "r", 5)
        assert (gp + 2).offset == 7
        assert (gp - 1).offset == 4
        # no node-hopping: the Split-C trick CC++ pointers don't have
        assert not hasattr(gp, "on_node")

    def test_data_ptr_validation(self):
        with pytest.raises(GlobalPointerError):
            DataGlobalPtr(0, "r", -1)


class TestStubTable:
    def _table(self):
        return StubTable(Cluster(1).nodes[0])

    def test_register_and_resolve(self):
        st = self._table()
        stub = st.register_local("C::m", threaded=True, atomic=False)
        assert st.resolve_name("C::m") is stub
        assert st.by_id(stub.stub_id) is stub

    def test_register_idempotent_same_mode(self):
        st = self._table()
        a = st.register_local("C::m", threaded=False, atomic=False)
        b = st.register_local("C::m", threaded=False, atomic=False)
        assert a is b
        assert st.local_count == 1

    def test_register_conflicting_mode_rejected(self):
        st = self._table()
        st.register_local("C::m", threaded=False, atomic=False)
        with pytest.raises(RuntimeStateError):
            st.register_local("C::m", threaded=True, atomic=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(RuntimeStateError):
            self._table().resolve_name("ghost::m")

    def test_bad_stub_id_rejected(self):
        with pytest.raises(RuntimeStateError):
            self._table().by_id(99)

    def test_cache_probe_install_invalidate(self):
        st = self._table()
        assert st.probe(1, "C::m") is None
        st.install(1, "C::m", CacheEntry(stub_id=7, rbuf_id=3))
        entry = st.probe(1, "C::m")
        assert entry.stub_id == 7 and entry.rbuf_id == 3
        # same method on a different node is a separate entry
        assert st.probe(2, "C::m") is None
        st.invalidate(1, "C::m")
        assert st.probe(1, "C::m") is None

    def test_invalidate_all(self):
        st = self._table()
        st.install(1, "a", CacheEntry(stub_id=0))
        st.install(2, "b", CacheEntry(stub_id=1))
        assert st.cached_count == 2
        st.invalidate_all()
        assert st.cached_count == 0


class TestBufferManager:
    def _mgr(self):
        return BufferManager(Cluster(1).nodes[0])

    def test_alloc_and_deposit(self):
        mgr = self._mgr()
        rbuf = mgr.alloc_rbuf("C::m", sender=1, capacity=64)
        out = mgr.deposit(rbuf.rbuf_id, b"\x01" * 32)
        assert out is rbuf
        assert bytes(rbuf.data) == b"\x01" * 32
        assert rbuf.uses == 1

    def test_keyed_per_sender(self):
        mgr = self._mgr()
        a = mgr.alloc_rbuf("C::m", sender=1, capacity=16)
        b = mgr.alloc_rbuf("C::m", sender=2, capacity=16)
        assert a.rbuf_id != b.rbuf_id
        assert mgr.rbuf_for("C::m", 1) is a
        assert mgr.rbuf_for("C::m", 2) is b

    def test_realloc_keeps_rbuf_id_stable(self):
        """Re-allocating an attached key must keep the id: a stub update
        advertising the first id may still be in flight (overlapping cold
        invocations), and warm deposits through it must keep resolving."""
        mgr = self._mgr()
        a = mgr.alloc_rbuf("C::m", sender=1, capacity=16)
        b = mgr.alloc_rbuf("C::m", sender=1, capacity=32)
        assert b is a
        assert a.capacity == 32  # grown, never shrunk
        assert mgr.alloc_rbuf("C::m", sender=1, capacity=8).capacity == 32
        assert mgr.deposit(a.rbuf_id, b"x") is a
        assert mgr.allocated == 1

    def test_deposit_grows_capacity(self):
        mgr = self._mgr()
        rbuf = mgr.alloc_rbuf("C::m", sender=0, capacity=4)
        mgr.deposit(rbuf.rbuf_id, b"\x00" * 100)
        assert rbuf.capacity == 100

    def test_unknown_rbuf_rejected(self):
        with pytest.raises(RuntimeStateError):
            self._mgr().deposit(123, b"")

    def test_capacity_bounds(self):
        with pytest.raises(RuntimeStateError):
            self._mgr().alloc_rbuf("C::m", sender=0, capacity=-1)


class TestRemoteDecorator:
    def test_modes_recorded(self):
        class T(ProcessorObject):
            @remote
            def plain(self):
                pass

            @remote(threaded=True)
            def threaded(self):
                pass

            @remote(atomic=True)
            def atomic(self):
                pass

            def not_remote(self):
                pass

        specs = remote_methods_of(T)
        assert set(specs) >= {"plain", "threaded", "atomic"}
        assert "not_remote" not in specs
        assert not specs["plain"].threaded
        assert specs["threaded"].threaded and not specs["threaded"].atomic
        assert specs["atomic"].atomic and specs["atomic"].needs_thread

    def test_inherited_methods_visible(self):
        class Base(ProcessorObject):
            @remote(threaded=True)
            def ping(self):
                pass

        class Derived(Base):
            @remote
            def extra(self):
                pass

        specs = remote_methods_of(Derived)
        assert "ping" in specs and "extra" in specs


class TestRegistry:
    def test_register_and_lookup(self):
        @processor_class
        class RegTestClass(ProcessorObject):
            pass

        assert registered_class("RegTestClass") is RegTestClass
        assert "RegTestClass" in registered_names()

    def test_reregister_same_class_ok(self):
        @processor_class
        class RegTestTwice(ProcessorObject):
            pass

        processor_class(RegTestTwice)  # idempotent

    def test_non_processor_class_rejected(self):
        with pytest.raises(RuntimeStateError):
            processor_class(int)  # type: ignore[arg-type]

    def test_unknown_class_rejected(self):
        with pytest.raises(RuntimeStateError):
            registered_class("NoSuchClass")

    def test_unbound_object_has_no_node(self):
        class Loose(ProcessorObject):
            pass

        with pytest.raises(RuntimeStateError):
            _ = Loose().my_node
