"""Unit tests for the CC++ RMI engine, contexts and collectives."""

import numpy as np
import pytest

from repro.ccpp import (
    CCppRuntime,
    ObjectGlobalPtr,
    ProcessorObject,
    WaitMode,
    processor_class,
    remote,
)
from repro.ccpp.collective import CCBarrier, CCReducer
from repro.errors import SimulationError
from repro.machine.cluster import Cluster
from repro.sim.account import CounterNames
from repro.sim.effects import Charge
from repro.sim.account import Category


@processor_class
class Target(ProcessorObject):
    """Remote-side fixture used across these tests."""

    def __init__(self, base=0.0):
        self.value = float(base)
        self.calls = []
        self.data = self.alloc_data(f"tgt.{self.obj_id}.{self.my_node}", 8)

    @remote
    def plain(self, x=0):
        self.calls.append(("plain", x))
        return self.value + x

    @remote(threaded=True)
    def slow_add(self, x):
        self.calls.append(("slow_add", x))
        yield Charge(10.0, Category.CPU)
        self.value += x
        return self.value

    @remote(atomic=True)
    def atomic_add(self, x):
        old = self.value
        yield Charge(5.0, Category.CPU)
        self.value = old + x
        return self.value

    @remote(threaded=True)
    def echo_array(self, arr):
        return np.asarray(arr) * 2.0

    @remote(threaded=True)
    def boom(self):
        raise ValueError("remote failure")


def _rt(n=2, **kw):
    return CCppRuntime(Cluster(n), **kw)


def _run(rt, program):
    thread = rt.launch(0, program)
    rt.run()
    return thread.result


class TestBasicRMI:
    def test_create_and_invoke(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target, 10.0)
            value = yield from ctx.rmi(gp, "plain", 5)
            return value

        assert _run(rt, program) == 15.0

    def test_local_create(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(0, Target, 3.0)
            assert gp.node == 0
            return (yield from ctx.rmi(gp, "plain"))

        assert _run(rt, program) == 3.0

    def test_threaded_rmi_runs_method_body(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target, 0.0)
            a = yield from ctx.rmi(gp, "slow_add", 4.0)
            b = yield from ctx.rmi(gp, "slow_add", 6.0)
            return (a, b)

        assert _run(rt, program) == (4.0, 10.0)

    def test_spin_and_park_same_result(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target, 1.0)
            a = yield from ctx.rmi(gp, "plain", 1, wait=WaitMode.SPIN)
            b = yield from ctx.rmi(gp, "plain", 1, wait=WaitMode.PARK)
            return (a, b)

        assert _run(rt, program) == (2.0, 2.0)

    def test_array_args_and_results(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            out = yield from ctx.rmi(gp, "echo_array", np.arange(5.0))
            return out

        out = _run(rt, program)
        assert np.array_equal(out, np.arange(5.0) * 2.0)

    def test_remote_exception_propagates_to_caller(self):
        """A raising method body is marshalled back and re-raised at the
        initiator as RemoteInvocationError — the callee keeps running."""
        from repro.errors import RemoteInvocationError

        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            try:
                yield from ctx.rmi(gp, "boom")
            except RemoteInvocationError as exc:
                # the callee survives: issue another RMI over the same path
                ok = yield from ctx.rmi(gp, "plain", 1)
                return (exc.node, "remote failure" in exc.detail, ok)

        assert _run(rt, program) == (1, True, 1.0)

    def test_unknown_method_rejected(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            yield from ctx.rmi(gp, "missing_method")

        with pytest.raises(SimulationError):
            _run(rt, program)


class TestStubCache:
    def test_cold_then_warm(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            for _ in range(5):
                yield from ctx.rmi(gp, "plain")

        _run(rt, program)
        counters = rt.cluster.aggregate_counters()
        # one cold miss for create + one for plain; rest warm
        assert counters.get(CounterNames.RMI_COLD) == 2
        assert counters.get(CounterNames.RMI_WARM) == 4

    def test_cold_slower_than_warm(self):
        rt = _rt()
        times = []

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            for _ in range(3):
                t0 = ctx.node.sim.now
                yield from ctx.rmi(gp, "plain", wait=WaitMode.SPIN)
                times.append(ctx.node.sim.now - t0)

        _run(rt, program)
        assert times[0] > times[1]
        assert times[1] == pytest.approx(times[2])

    def test_caching_disabled_every_call_cold(self):
        rt = _rt(stub_caching=False)

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            for _ in range(3):
                yield from ctx.rmi(gp, "plain")

        _run(rt, program)
        counters = rt.cluster.aggregate_counters()
        assert counters.get(CounterNames.RMI_WARM) == 0
        assert counters.get(CounterNames.RMI_COLD) == 4

    def test_per_destination_cache_entries(self):
        rt = _rt(3)

        def program(ctx):
            gp1 = yield from ctx.create(1, Target)
            gp2 = yield from ctx.create(2, Target)
            yield from ctx.rmi(gp1, "plain")
            yield from ctx.rmi(gp2, "plain")  # different node: cold again

        _run(rt, program)
        assert rt.cluster.aggregate_counters().get(CounterNames.RMI_COLD) == 4


class TestPersistentBuffers:
    def test_warm_invocations_reuse_rbuf(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            for i in range(4):
                yield from ctx.rmi(gp, "slow_add", float(i))

        _run(rt, program)
        counters = rt.cluster.aggregate_counters()
        assert counters.get(CounterNames.RBUF_REUSE) >= 3

    def test_disabled_buffers_never_reuse(self):
        rt = _rt(persistent_buffers=True)
        rt2 = _rt(persistent_buffers=False)

        def program(ctx):
            gp = yield from ctx.create(1, Target)
            for i in range(4):
                yield from ctx.rmi(gp, "slow_add", float(i))

        _run(rt2, program)
        assert rt2.cluster.aggregate_counters().get(CounterNames.RBUF_REUSE) == 0


class TestGPAccess:
    def test_gp_read_write_roundtrip(self):
        rt = _rt()

        def program(ctx):
            gp_obj = yield from ctx.create(1, Target)
            target = rt.object_table(1).get(gp_obj.obj_id)
            dgp = target.data_ptr(target.data_region_name())
            yield from ctx.gp_write(dgp + 2, 7.5)
            return (yield from ctx.gp_read(dgp + 2))

        # helper for region name
        def region_name(self):
            return f"tgt.{self.obj_id}.{self.my_node}"

        Target.data_region_name = region_name
        try:
            assert _run(rt, program) == 7.5
        finally:
            del Target.data_region_name

    def test_gp_local_access_cheap(self):
        rt = _rt()

        def program(ctx):
            gp_obj = yield from ctx.create(0, Target)
            dgp = ctx.data_ptr(f"tgt.{gp_obj.obj_id}.0")
            t0 = ctx.node.sim.now
            yield from ctx.gp_write(dgp, 1.0)
            value = yield from ctx.gp_read(dgp)
            return (value, ctx.node.sim.now - t0)

        value, elapsed = _run(rt, program)
        assert value == 1.0
        assert elapsed < 10.0  # no round trips

    def test_gp_remote_read_creates_service_thread(self):
        rt = _rt()

        def program(ctx):
            gp_obj = yield from ctx.create(1, Target)
            dgp = ctx.data_ptr(f"tgt.{gp_obj.obj_id}.1").__class__(
                1, f"tgt.{gp_obj.obj_id}.1", 0
            )
            before = rt.cluster.aggregate_counters().get(CounterNames.THREAD_CREATE)
            yield from ctx.gp_read(dgp)
            after = rt.cluster.aggregate_counters().get(CounterNames.THREAD_CREATE)
            return after - before

        assert _run(rt, program) == 1


class TestAsyncRMI:
    def test_one_sided_invocation_runs(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Target, 0.0)
            yield from ctx.rmi_async(gp, "slow_add", 5.0)
            # observe completion via a subsequent synchronous call
            yield from ctx.rmi(gp, "plain")
            return rt.object_table(1).get(gp.obj_id).value

        assert _run(rt, program) == 5.0


class TestCollectives:
    def test_barrier_holds_until_all_arrive(self):
        rt = _rt(4)
        release_times = {}
        barrier_id = rt._create_local(0, "CCBarrier", (4,))
        gp = ObjectGlobalPtr(0, barrier_id, "CCBarrier")

        def program_factory(delay):
            def program(ctx):
                yield Charge(delay, Category.CPU)
                yield from CCBarrier.wait(ctx, gp)
                release_times[ctx.my_node] = ctx.node.sim.now

            return program

        for nid in range(4):
            rt.launch(nid, program_factory(100.0 * nid))
        rt.run()
        assert all(t >= 300.0 for t in release_times.values())

    def test_barrier_reusable_across_epochs(self):
        rt = _rt(2)
        barrier_id = rt._create_local(0, "CCBarrier", (2,))
        gp = ObjectGlobalPtr(0, barrier_id, "CCBarrier")
        epochs = []

        def program(ctx):
            for _ in range(3):
                e = yield from CCBarrier.wait(ctx, gp)
                if ctx.my_node == 0:
                    epochs.append(e)

        rt.launch(0, program)
        rt.launch(1, program)
        rt.run()
        assert epochs == [1, 2, 3]

    def test_reducer_sums_contributions(self):
        rt = _rt(3)
        red_id = rt._create_local(0, "CCReducer", (3,))
        gp = ObjectGlobalPtr(0, red_id, "CCReducer")
        totals = {}

        def program(ctx):
            total = yield from ctx.rmi(gp, "contribute", float(ctx.my_node + 1))
            totals[ctx.my_node] = total

        for nid in range(3):
            rt.launch(nid, program)
        rt.run()
        assert set(totals.values()) == {6.0}


class TestPar:
    def test_parfor_results_in_order(self):
        rt = _rt(1)

        def program(ctx):
            def body(i):
                def g():
                    yield Charge(float(10 - i), Category.CPU)
                    return i * i

                return g()

            return (yield from ctx.parfor(range(5), body))

        assert _run(rt, program) == [0, 1, 4, 9, 16]

    def test_par_runs_bodies_concurrently(self):
        rt = _rt(1)

        def program(ctx):
            t0 = ctx.node.sim.now

            def body():
                yield Charge(50.0, Category.CPU)

            yield from ctx.par([body() for _ in range(3)])
            return ctx.node.sim.now - t0

        # serial on one CPU: 3 x 50 + thread overheads; concurrency here
        # means overlap of *waiting*, not CPU — so just check completion
        assert _run(rt, program) >= 150.0

    def test_spawn_returns_handle(self):
        rt = _rt(1)

        def program(ctx):
            def child():
                yield Charge(5.0, Category.CPU)
                return "done"

            t = yield from ctx.spawn(child())
            from repro.threads.api import join

            return (yield from join(ctx.node, t))

        assert _run(rt, program) == "done"
