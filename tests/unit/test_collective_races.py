"""Regression tests for the collective-correctness races.

Two long-standing ordering bugs in the linear collectives, each with a
deterministic reproduction that failed before its fix:

* Split-C ``broadcast`` pushed value and flag as two separate one-way
  stores and receivers assumed they land in issue order; a delay/jitter
  fault plan reorders the unreliable fabric and a receiver reads the
  stale value after seeing the flag.
* ``CCReducer.contribute`` kept one shared ``round_total`` slot; a
  waiter woken for round *r* can sit in the lock queue long enough for
  round *r+1* to complete and overwrite the slot before the waiter
  reads it.

Plus the ``ensure_scratch`` size check: an explicit caller size smaller
than what the collectives index must fail loudly at allocation time.
"""

from __future__ import annotations

import pytest

from repro.ccpp import CCppRuntime
from repro.ccpp.collective import CCReducer
from repro.errors import RuntimeStateError
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.splitc import SplitCRuntime
from repro.splitc.collective import (
    SCRATCH_REGION,
    _scratch_size,
    broadcast,
    ensure_scratch,
)


def _jitter_plan(seed: int) -> FaultPlan:
    """Enough delay/jitter to push a short packet past its successors —
    the two broadcast stores ride the same channel a few µs apart, so a
    40 µs jitter window reorders them about half the time."""
    return FaultPlan(seed=seed).delay(
        "am.short", rate=0.7, delay_us=5.0, jitter_us=40.0
    )


class TestBroadcastStoreOrdering:
    def _run(self, seed: int) -> dict[int, float]:
        cluster = Cluster(3, faults=_jitter_plan(seed))
        rt = SplitCRuntime(cluster)
        ensure_scratch(rt)
        outs: dict[int, float] = {}

        def prog(proc):
            outs[proc.my_node] = yield from broadcast(proc, 0, 42.0)

        rt.run_spmd(prog)
        return outs

    @pytest.mark.parametrize("seed", [0, 2, 3, 4, 7])
    def test_value_lands_with_flag_under_jitter(self, seed):
        # pre-fix: the flag store overtakes the value store on these
        # seeds and a receiver returns the stale 0.0
        outs = self._run(seed)
        assert outs == {0: 42.0, 1: 42.0, 2: 42.0}

    def test_repeated_rounds_under_jitter(self):
        # successive broadcasts reuse the scratch slots; the single-store
        # protocol must leave them clean between rounds
        cluster = Cluster(3, faults=_jitter_plan(1))
        rt = SplitCRuntime(cluster)
        ensure_scratch(rt)
        outs: dict[int, list[float]] = {}

        def prog(proc):
            seen = []
            for round_no in range(4):
                got = yield from broadcast(proc, 0, 7.0 + round_no)
                seen.append(got)
            outs[proc.my_node] = seen

        rt.run_spmd(prog)
        expect = [7.0, 8.0, 9.0, 10.0]
        assert all(seen == expect for seen in outs.values()), outs


class TestReducerRoundCapture:
    def test_waiter_reads_its_own_round(self):
        """Scheduler-adversarial schedule on one node, nprocs=2:

        W contributes round 0 and parks in the condition wait; X
        completes round 0 (total 3.0) and broadcasts; the run queue then
        runs Y and Z — a full round 1 (total 30.0) — before W ever
        reacquires the lock.  W must still read 3.0.
        """
        cluster = Cluster(1)
        rt = CCppRuntime(cluster)
        oid = rt._create_local(0, "CCReducer", (2,))
        red = rt.object_table(0).get(oid)
        got: dict[str, float] = {}

        def contrib(key, value):
            got[key] = yield from red.contribute(value)

        cluster.launch(0, contrib("W", 1.0))
        cluster.launch(0, contrib("X", 2.0))
        cluster.launch(0, contrib("Y", 10.0))
        cluster.launch(0, contrib("Z", 20.0))
        cluster.run()
        assert got == {"W": 3.0, "X": 3.0, "Y": 30.0, "Z": 30.0}

    def test_many_rounds_remote(self):
        """The normal remote path stays correct across rounds."""
        cluster = Cluster(4)
        rt = CCppRuntime(cluster)
        totals: dict[tuple[int, int], float] = {}

        def main(ctx):
            gp = yield from ctx.create(0, CCReducer, 4)
            state["gp"] = gp

        state: dict = {}
        rt.launch(0, main, "create")
        rt.run()

        def worker(ctx):
            for r in range(3):
                totals[(ctx.nid, r)] = yield from ctx.rmi(
                    state["gp"], "contribute", float(ctx.nid + 1)
                )

        for nid in range(4):
            rt.launch(nid, worker, f"w{nid}")
        rt.run()
        assert all(v == 10.0 for v in totals.values()), totals


class TestEnsureScratchValidation:
    def test_undersized_explicit_size_rejected(self):
        rt = SplitCRuntime(Cluster(4))
        need = _scratch_size(rt.nprocs)
        with pytest.raises(RuntimeStateError, match="scratch"):
            ensure_scratch(rt, size=need - 1)

    def test_oversized_and_exact_accepted(self):
        rt = SplitCRuntime(Cluster(4))
        need = _scratch_size(rt.nprocs)
        ensure_scratch(rt, size=need + 8)
        assert len(rt.memory(0).region(SCRATCH_REGION)) == need + 8
        # idempotent re-check with the exact size passes
        ensure_scratch(rt, size=need)

    def test_existing_small_region_still_rejected(self):
        rt = SplitCRuntime(Cluster(4))
        rt.memory(0).alloc(SCRATCH_REGION, 2)
        with pytest.raises(RuntimeStateError, match="too small"):
            ensure_scratch(rt)
