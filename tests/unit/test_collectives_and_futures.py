"""Unit tests for Split-C library collectives, CC++ futures, and AM flow
control / interrupt reception."""

import numpy as np
import pytest

from repro.am import install_am
from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.machine.cluster import Cluster
from repro.machine.costs import SP2_COSTS
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge
from repro.splitc import SplitCRuntime, collective


def _sc_runtime(n=4):
    cluster = Cluster(n)
    rt = SplitCRuntime(cluster)
    collective.ensure_scratch(rt)
    return cluster, rt


class TestSplitCCollectives:
    def test_broadcast(self):
        _, rt = _sc_runtime()

        def program(proc):
            value = 42.5 if proc.my_node == 1 else -1.0
            return (yield from collective.broadcast(proc, 1, value))

        assert rt.run_spmd(program) == [42.5] * 4

    def test_reduce_add(self):
        _, rt = _sc_runtime()

        def program(proc):
            return (yield from collective.reduce_add(proc, 0, float(proc.my_node + 1)))

        results = rt.run_spmd(program)
        assert results[0] == 10.0
        assert results[1:] == [None, None, None]

    def test_all_reduce_add(self):
        _, rt = _sc_runtime()

        def program(proc):
            return (yield from collective.all_reduce_add(proc, float(2 ** proc.my_node)))

        assert rt.run_spmd(program) == [15.0] * 4

    def test_all_gather(self):
        _, rt = _sc_runtime()

        def program(proc):
            return (yield from collective.all_gather(proc, float(10 * proc.my_node)))

        for vec in rt.run_spmd(program):
            assert np.array_equal(vec, [0.0, 10.0, 20.0, 30.0])

    def test_repeated_collectives(self):
        _, rt = _sc_runtime()

        def program(proc):
            total = 0.0
            for round_no in range(3):
                total += yield from collective.all_reduce_add(
                    proc, float(proc.my_node + round_no)
                )
            return total

        # round sums: 0+1+2+3=6, then 10, then 14 -> 30
        assert rt.run_spmd(program) == [30.0] * 4

    def test_ensure_scratch_idempotent(self):
        _, rt = _sc_runtime()
        collective.ensure_scratch(rt)  # second call is a no-op


@processor_class
class FutureTarget(ProcessorObject):
    @remote(threaded=True)
    def slow_double(self, x):
        yield Charge(100.0, Category.CPU)
        return 2 * x


class TestRMIFutures:
    def test_future_resolves(self):
        rt = CCppRuntime(Cluster(2))

        def program(ctx):
            gp = yield from ctx.create(1, FutureTarget)
            fut = yield from ctx.rmi_future(gp, "slow_double", 21)
            return (yield from fut.get())

        t = rt.launch(0, program)
        rt.run()
        assert t.result == 42

    def test_futures_overlap_requests(self):
        """Two futures in flight take ~one method's latency, not two."""
        rt = CCppRuntime(Cluster(3))

        def program(ctx):
            gp1 = yield from ctx.create(1, FutureTarget)
            gp2 = yield from ctx.create(2, FutureTarget)
            t0 = ctx.node.sim.now
            f1 = yield from ctx.rmi_future(gp1, "slow_double", 1)
            f2 = yield from ctx.rmi_future(gp2, "slow_double", 2)
            a = yield from f1.get()
            b = yield from f2.get()
            return (a, b, ctx.node.sim.now - t0)

        t = rt.launch(0, program)
        rt.run()
        a, b, elapsed = t.result
        assert (a, b) == (2, 4)
        # serial would be >= 2 x (100 method + ~80 RMI); overlapped is less
        assert elapsed < 320.0

    def test_done_flag(self):
        rt = CCppRuntime(Cluster(2))

        def program(ctx):
            gp = yield from ctx.create(1, FutureTarget)
            fut = yield from ctx.rmi_future(gp, "slow_double", 3)
            before = fut.done
            value = yield from fut.get()
            return (before, fut.done, value)

        t = rt.launch(0, program)
        rt.run()
        assert t.result == (False, True, 6)


class TestFlowControl:
    def test_outstanding_messages_bounded_by_window(self):
        costs = SP2_COSTS.with_net(credit_window=4)
        cluster = Cluster(2, costs=costs)
        eps = install_am(cluster)
        in_flight_max = {"v": 0}

        def sink(ep, src, frame):
            return
            yield

        for ep in eps:
            ep.register_handler("sink", sink)

        def sender(node):
            ep = node.service("am")
            for _ in range(20):
                yield from ep.send_short(1, "sink", nbytes=12)
                outstanding = (
                    cluster.network.packets_sent - cluster.network.packets_delivered
                )
                in_flight_max["v"] = max(in_flight_max["v"], outstanding)

        def server(node):
            ep = node.service("am")
            while True:
                yield from ep.wait_and_poll()

        cluster.launch(1, server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run()
        # all 20 delivered despite the tiny window
        handled = cluster.nodes[1].counters.get(CounterNames.POLLS)
        assert handled > 0
        assert cluster.network.quiescent() or not cluster.nodes[1].has_mail

    def test_tiny_window_still_completes_bidirectional(self):
        """Both directions saturated: flow control must not deadlock
        (senders service their own inboxes while waiting)."""
        costs = SP2_COSTS.with_net(credit_window=2)
        cluster = Cluster(2, costs=costs)
        eps = install_am(cluster)
        counts = {0: 0, 1: 0}

        def sink(ep, src, frame):
            counts[ep.node.nid] += 1
            return
            yield

        for ep in eps:
            ep.register_handler("sink", sink)

        def pump(node, dst):
            ep = node.service("am")
            for _ in range(15):
                yield from ep.send_short(dst, "sink", nbytes=12)
            yield from ep.poll_until(lambda: counts[node.nid] >= 15)

        cluster.launch(0, pump(cluster.nodes[0], 1))
        cluster.launch(1, pump(cluster.nodes[1], 0))
        cluster.run()
        assert counts == {0: 15, 1: 15}

    def test_window_must_be_at_least_two(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            SP2_COSTS.with_net(credit_window=1)


class TestInterruptReception:
    def test_interrupt_mode_charges_per_message(self):
        results = {}
        for mode in ("polling", "interrupt"):
            rt = CCppRuntime(Cluster(2), reception=mode)

            def program(ctx):
                gp = ctx.rt.manager_ptr(1)
                yield from ctx.rmi(gp, "ping")
                t0 = ctx.node.sim.now
                for _ in range(5):
                    yield from ctx.rmi(gp, "ping")
                results[ctx.rt.reception] = (ctx.node.sim.now - t0) / 5

            rt.launch(0, program)
            rt.run()
        assert results["interrupt"] > results["polling"] + 1.5 * SP2_COSTS.net.interrupt_cpu

    def test_unknown_reception_mode_rejected(self):
        from repro.errors import RuntimeStateError

        with pytest.raises(RuntimeStateError):
            install_am(Cluster(1), reception="telepathy")
