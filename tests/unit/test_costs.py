"""Unit tests for the cost models."""

import pytest

from repro.errors import CalibrationError
from repro.machine.costs import (
    MPL_COSTS,
    NEXUS_COSTS,
    SP2_COSTS,
    CostModel,
    NetworkCosts,
    ThreadCosts,
)


class TestValidation:
    def test_defaults_are_valid(self):
        CostModel().validate()

    def test_negative_thread_cost_rejected(self):
        with pytest.raises(CalibrationError):
            ThreadCosts(create=-1.0).validate()

    def test_negative_latency_rejected(self):
        with pytest.raises(CalibrationError):
            NetworkCosts(wire_latency=-1.0).validate()

    def test_zero_short_max_bytes_rejected(self):
        with pytest.raises(CalibrationError):
            NetworkCosts(short_max_bytes=0).validate()


class TestOverrides:
    def test_with_threads_copies(self):
        c = SP2_COSTS.with_threads(sync_op=0.0)
        assert c.threads.sync_op == 0.0
        assert SP2_COSTS.threads.sync_op == 0.4  # original untouched
        assert c.threads.create == SP2_COSTS.threads.create

    def test_with_net_copies(self):
        c = SP2_COSTS.with_net(wire_latency=99.0)
        assert c.net.wire_latency == 99.0
        assert SP2_COSTS.net.wire_latency != 99.0

    def test_with_runtime_copies(self):
        c = SP2_COSTS.with_runtime(stub_lookup=0.0)
        assert c.runtime.stub_lookup == 0.0

    def test_override_validates(self):
        with pytest.raises(CalibrationError):
            SP2_COSTS.with_threads(create=-5.0)


class TestCalibration:
    """The published numbers the SP2 profile is calibrated to."""

    def test_thread_costs_match_paper_derivation(self):
        t = SP2_COSTS.threads
        assert t.create == pytest.approx(5.0)
        assert t.context_switch == pytest.approx(6.0)
        assert t.sync_op == pytest.approx(0.4)

    def test_short_am_round_trip_near_55us(self):
        net = SP2_COSTS.net
        one_way = net.short_send_cpu + net.short_wire_time(24) + net.short_recv_cpu + net.poll_hit_cpu
        assert 2 * one_way == pytest.approx(55.0, rel=0.05)

    def test_stub_lookup_is_about_3us(self):
        assert SP2_COSTS.runtime.stub_lookup == pytest.approx(3.0)

    def test_mpl_round_trip_near_88us(self):
        net = MPL_COSTS.net
        one_way = net.mpl_send_cpu + net.short_wire_time(16) + net.mpl_recv_cpu
        assert 2 * one_way == pytest.approx(88.0, rel=0.05)

    def test_wire_time_formulas(self):
        net = SP2_COSTS.net
        assert net.short_wire_time(0) == net.wire_latency
        assert net.short_wire_time(100) == pytest.approx(
            net.wire_latency + 100 * net.per_byte
        )
        assert net.bulk_wire_time(100) < net.short_wire_time(100)


class TestNexusProfile:
    def test_nexus_is_uniformly_heavier(self):
        assert NEXUS_COSTS.net.short_send_cpu > 50 * SP2_COSTS.net.short_send_cpu
        assert NEXUS_COSTS.threads.create > 10 * SP2_COSTS.threads.create
        assert NEXUS_COSTS.runtime.name_resolve > SP2_COSTS.runtime.name_resolve

    def test_nexus_validates(self):
        NEXUS_COSTS.validate()

    def test_profiles_have_distinct_names(self):
        assert SP2_COSTS.name != NEXUS_COSTS.name
