"""Unit tests for the heartbeat failure detector and membership views."""

import pytest

from repro.am import RetryPolicy, install_am
from repro.errors import SimulationError
from repro.ft import KIND_HB, FailureDetector, Membership, install_detector
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.sim.account import CounterNames


class TestMembership:
    def test_starts_intact_at_epoch_zero(self):
        m = Membership(0, [0, 1, 2])
        assert m.epoch == 0
        assert all(m.is_alive(p) for p in (0, 1, 2))

    def test_declare_dead_bumps_epoch_once(self):
        m = Membership(0, [0, 1, 2])
        assert m.declare_dead(2) is True
        assert m.epoch == 1
        assert not m.is_alive(2)
        # idempotent: the second declaration is a no-op
        assert m.declare_dead(2) is False
        assert m.epoch == 1

    def test_cannot_declare_self_dead(self):
        m = Membership(1, [0, 1])
        with pytest.raises(SimulationError):
            m.declare_dead(1)

    def test_listeners_see_each_declaration(self):
        m = Membership(0, [0, 1, 2])
        seen = []
        m.on_change(lambda mm, peer: seen.append((mm.epoch, peer)))
        m.declare_dead(1)
        m.declare_dead(2)
        m.declare_dead(1)  # already dead: no callback
        assert seen == [(1, 1), (2, 2)]


class TestDetectorConfig:
    def test_interval_must_be_positive(self):
        with pytest.raises(SimulationError):
            FailureDetector(Cluster(2), interval_us=0.0)

    def test_phi_below_two_rejected(self):
        """One missed heartbeat is jitter, not a failure."""
        with pytest.raises(SimulationError):
            FailureDetector(Cluster(2), phi=1.0)


def _poll_server(node):
    ep = node.service("am")
    while True:
        yield from ep.wait_and_poll()


def _chatter(node, dst, n):
    ep = node.service("am")
    for i in range(n):
        yield from ep.send_short(dst, "h", args=(i,), nbytes=16)


class TestHealthyCluster:
    def test_no_false_positives_and_heartbeats_flow(self):
        cluster = Cluster(3)
        eps = install_am(cluster, reliable=True)
        for ep in eps:
            ep.register_handler("h", lambda *a: iter(()))
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)
        for nid in (1, 2):
            cluster.launch(nid, _poll_server(cluster.nodes[nid]), daemon=True)
        cluster.launch(0, _chatter(cluster.nodes[0], 1, 50))
        cluster.run()
        assert fd.describe() == "all views intact"
        assert all(m.epoch == 0 for m in fd.memberships)
        counters = cluster.aggregate_counters().snapshot()
        assert counters.get(CounterNames.HB_SENT, 0) > 0
        assert counters.get(CounterNames.HB_RECV, 0) > 0
        assert counters.get(CounterNames.PEER_DEAD, 0) == 0

    def test_stands_down_when_program_finishes(self):
        """The detector must never be the thing keeping the sim alive:
        a finished program drains even with heartbeats armed."""
        cluster = Cluster(2)
        eps = install_am(cluster)
        eps[1].register_handler("h", lambda *a: iter(()))
        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, _chatter(cluster.nodes[0], 1, 3))
        install_detector(cluster, interval_us=50.0, phi=4.0)
        cluster.run()  # must terminate (no until=, no watchdog needed)
        assert cluster.sim.now < 100_000.0

    def test_data_traffic_counts_as_liveness(self):
        """Every arrival stamps last_heard, so a chatty peer survives a
        fault plan that eats every one of its heartbeats."""
        cluster = Cluster(2, faults=FaultPlan().drop(KIND_HB, rate=1.0))
        eps = install_am(cluster, reliable=True)
        for ep in eps:
            ep.register_handler("h", lambda *a: iter(()))

        def slow_chatter(node, dst):
            ep = node.service("am")
            for i in range(30):
                # spaced beyond the heartbeat interval but well inside
                # the phi threshold: data alone keeps both views intact
                yield from ep.send_short(dst, "h", args=(i,), nbytes=16)
                yield from ep.poll_until(lambda: True)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)
        cluster.launch(0, slow_chatter(cluster.nodes[0], 1))
        cluster.run()
        assert fd.describe() == "all views intact"


class TestFailureDetection:
    def _failed_cluster(self, *, fail_at=1_000.0, n=3):
        cluster = Cluster(
            n, faults=FaultPlan().fail_node(n - 1, at=fail_at)
        )
        eps = install_am(
            cluster,
            reliable=True,
            retry=RetryPolicy(timeout_us=200.0, backoff=2.0,
                              max_timeout_us=3200.0, max_retries=100),
        )
        for ep in eps:
            ep.register_handler("h", lambda *a: iter(()))
        return cluster, eps

    def test_silent_peer_declared_after_threshold(self):
        fail_at, interval, phi = 1_000.0, 100.0, 4.0
        cluster, eps = self._failed_cluster(fail_at=fail_at)
        fd = install_detector(cluster, interval_us=interval, phi=phi)
        declared_at = {}

        for nid in (0, 1):
            fd.memberships[nid].on_change(
                lambda m, peer, nid=nid: declared_at.setdefault(nid, cluster.sim.now)
            )

        def waiter(node, fd=fd):
            ep = node.service("am")
            yield from ep.poll_until(
                lambda: not fd.memberships[node.nid].is_alive(2)
            )

        for nid in (0, 1):
            cluster.launch(nid, waiter(cluster.nodes[nid]), f"wait@{nid}")
        cluster.launch(2, _poll_server(cluster.nodes[2]), daemon=True)
        cluster.run(watchdog_us=True)
        # both survivors declared node 2 dead, at or after the phi
        # threshold past the failure instant, within one extra interval
        threshold = phi * interval
        for nid in (0, 1):
            assert not fd.memberships[nid].is_alive(2)
            assert fd.memberships[nid].epoch == 1
            assert fail_at + threshold <= declared_at[nid] <= fail_at + threshold + 2 * interval
        assert "epoch=1" in fd.describe()

    def test_suspicion_grows_with_silence(self):
        cluster, eps = self._failed_cluster(fail_at=500.0)
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)
        samples = []

        def sampler(node):
            ep = node.service("am")
            for _ in range(12):
                samples.append(fd.suspicion(0, 2))
                yield from ep.send_short(1, "h", nbytes=16)
            # run out the clock until the declaration lands
            yield from ep.poll_until(lambda: fd.is_dead(0, 2))

        cluster.launch(0, sampler(cluster.nodes[0]))
        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(2, _poll_server(cluster.nodes[2]), daemon=True)
        cluster.run(watchdog_us=True)
        assert fd.is_dead(0, 2)
        # suspicion is silence in intervals: nondecreasing once node 2
        # goes dark, and it crossed phi by the time death was declared
        tail = [s for s in samples if s > 0.0]
        assert tail == sorted(tail)
        assert fd.suspicion(0, 2) >= 4.0

    def test_report_unreachable_declares_immediately(self):
        cluster = Cluster(2)
        install_am(cluster, reliable=True)
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)
        assert not fd.is_dead(0, 1)
        fd.report_unreachable(0, 1)
        assert fd.is_dead(0, 1)
        assert fd.memberships[0].epoch == 1
        # only the reporting node's view changed
        assert not fd.is_dead(1, 0)

    def test_retry_exhaustion_feeds_the_detector(self):
        """With a detector attached, a channel that exhausts its budget
        is reported instead of raising RetryExhaustedError — the program
        then observes the failure through its membership view."""
        cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        eps = install_am(
            cluster,
            reliable=True,
            retry=RetryPolicy(timeout_us=50.0, backoff=2.0,
                              max_timeout_us=200.0, max_retries=3),
        )
        eps[1].register_handler("h", lambda *a: iter(()))
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)

        def sender(node):
            ep = node.service("am")
            yield from ep.send_short(1, "h", nbytes=16)
            yield from ep.poll_until(lambda: fd.is_dead(0, 1))
            return fd.memberships[0].epoch

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        thread = cluster.launch(0, sender(cluster.nodes[0]))
        cluster.run(watchdog_us=True)
        assert thread.result == 1
        counters = cluster.aggregate_counters().snapshot()
        assert counters.get(CounterNames.PKT_ABANDONED, 0) >= 1
