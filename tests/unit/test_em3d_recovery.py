"""Unit tests for fault-tolerant EM3D: checkpoint/restart recovery."""

import numpy as np
import pytest

from repro.apps.em3d import (
    CheckpointStore,
    Em3dGraph,
    Em3dParams,
    reference_steps,
    run_recovering_em3d,
)
from repro.errors import SimulationError
from repro.machine.faults import FaultPlan
from repro.sim.account import CounterNames


def _graph(seed=11, n_nodes=32, n_procs=4):
    return Em3dGraph(
        Em3dParams(n_nodes=n_nodes, degree=4, n_procs=n_procs,
                   pct_remote=0.5, seed=seed)
    )


class TestCheckpointStore:
    def test_initial_state_is_step_zero(self):
        store = CheckpointStore({0: 1.0, 1: 2.0})
        step, vals = store.latest()
        assert step == 0
        assert vals == {0: 1.0, 1: 2.0}
        assert store.restores == 1

    def test_partial_write_does_not_commit(self):
        store = CheckpointStore({0: 0.0, 1: 0.0})
        store.write(1, 0, {0: 5.0}, participants=[0, 1])
        step, vals = store.latest()
        assert step == 0  # rank 1 never wrote: step 1 is not committed
        assert vals == {0: 0.0, 1: 0.0}

    def test_full_participant_set_commits(self):
        store = CheckpointStore({0: 0.0, 1: 0.0})
        store.write(1, 0, {0: 5.0}, participants=[0, 1])
        store.write(1, 1, {1: 7.0}, participants=[0, 1])
        step, vals = store.latest()
        assert step == 1
        assert vals == {0: 5.0, 1: 7.0}
        assert store.writes == 2

    def test_latest_returns_highest_committed(self):
        store = CheckpointStore({0: 0.0})
        store.write(1, 0, {0: 1.0}, participants=[0])
        store.write(3, 0, {0: 3.0}, participants=[0])
        store.write(2, 0, {0: 2.0}, participants=[0])
        assert store.latest() == (3, {0: 3.0})


class TestCleanRun:
    def test_matches_reference_bitwise(self):
        graph = _graph()
        out = run_recovering_em3d(graph, steps=4)
        assert out.attempts == 1
        assert out.dead_procs == []
        assert out.restart_steps == []
        assert out.ckpt_restores == 0
        assert out.values.tobytes() == reference_steps(graph, 4).tobytes()
        assert out.conserved and out.quiescent

    def test_checkpoint_cadence(self):
        graph = _graph()
        # ckpt_every=2 over 3 steps: commits at step 2 and the final
        # step 3, one write per rank per commit
        out = run_recovering_em3d(graph, steps=3, ckpt_every=2)
        assert out.ckpt_writes == 2 * graph.params.n_procs
        assert out.counters.get(CounterNames.CKPT_WRITE, 0) == out.ckpt_writes

    def test_rejects_bad_parameters(self):
        graph = _graph()
        with pytest.raises(SimulationError):
            run_recovering_em3d(graph, steps=0)
        with pytest.raises(SimulationError):
            run_recovering_em3d(graph, steps=2, ckpt_every=0)


class TestFailureRecovery:
    def _run_with_kill(self, graph, *, victim=2, at_frac=0.5, steps=4):
        horizon = run_recovering_em3d(graph, steps=steps).elapsed_us
        plan = FaultPlan(seed=7).fail_node(victim, at=at_frac * horizon)
        return run_recovering_em3d(graph, steps=steps, faults=plan)

    def test_midrun_kill_recovers_to_reference(self):
        """ISSUE acceptance case: kill a node mid-run; the driver
        restarts from the last committed checkpoint on the survivors and
        still lands on the fault-free reference values, bitwise."""
        graph = _graph()
        out = self._run_with_kill(graph)
        assert out.attempts == 2
        assert out.dead_procs == [2]
        assert len(out.restart_steps) == 1
        assert out.ckpt_restores == 1
        assert out.counters.get(CounterNames.CKPT_RESTORE, 0) == 3  # survivors
        assert out.values.tobytes() == reference_steps(graph, 4).tobytes()
        assert out.conserved

    def test_restart_resumes_from_committed_step(self):
        graph = _graph()
        out = self._run_with_kill(graph)
        (restart,) = out.restart_steps
        assert 0 <= restart < 4  # a committed step, strictly before the end

    def test_early_kill_restarts_from_step_zero(self):
        graph = _graph()
        horizon = run_recovering_em3d(graph, steps=4).elapsed_us
        plan = FaultPlan(seed=7).fail_node(1, at=0.05 * horizon)
        out = run_recovering_em3d(graph, steps=4, faults=plan)
        assert out.attempts == 2
        assert out.restart_steps == [0]  # died before any checkpoint committed
        assert out.values.tobytes() == reference_steps(graph, 4).tobytes()

    def test_recovery_is_deterministic(self):
        """The same graph and a rebuilt-identical plan replay to the
        same attempts, restart points, virtual time and values."""
        graph = _graph()
        horizon = run_recovering_em3d(graph, steps=4).elapsed_us

        def once():
            plan = FaultPlan(seed=7).fail_node(2, at=0.5 * horizon)
            out = run_recovering_em3d(graph, steps=4, faults=plan)
            return (out.attempts, tuple(out.dead_procs),
                    tuple(out.restart_steps), out.elapsed_us,
                    out.values.tobytes(), tuple(sorted(out.counters.items())))

        assert once() == once()

    def test_lossy_fabric_without_deaths_still_exact(self):
        graph = _graph()
        plan = FaultPlan(seed=3).drop("am.", rate=0.05).duplicate("am.", rate=0.02)
        out = run_recovering_em3d(graph, steps=4, faults=plan)
        assert out.attempts == 1
        assert out.values.tobytes() == reference_steps(graph, 4).tobytes()
        assert out.conserved and out.quiescent
        assert out.counters.get(CounterNames.PKT_RETRANSMIT, 0) > 0

    def test_empty_plan_matches_no_plan_bitwise(self):
        """ISSUE acceptance case: recovery machinery armed but idle (an
        empty fault plan) must not perturb any committed observable."""
        graph = _graph()
        a = run_recovering_em3d(graph, steps=4)
        b = run_recovering_em3d(graph, steps=4, faults=FaultPlan())
        assert a.values.tobytes() == b.values.tobytes()
        assert a.elapsed_us == b.elapsed_us
        assert a.counters == b.counters
        assert a.ckpt_writes == b.ckpt_writes
