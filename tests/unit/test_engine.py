"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, lambda: fired.append("c"))
    sim.schedule(10.0, lambda: fired.append("a"))
    sim.schedule(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_times_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(7.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(10.0, outer)
    sim.run()
    assert fired == [("outer", 10.0), ("inner", 15.0)]


def test_zero_delay_event_fires_at_now():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule_event(5.0, lambda: fired.append(1))
    sim.schedule(3.0, ev.cancel)
    sim.run()
    assert fired == []
    assert not ev.alive


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule_event(5.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    ev = sim.schedule_event(5.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    assert not ev.alive
    ev.cancel()  # must not disturb anything
    sim.schedule(1.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_pending_counts_live_events():
    sim = Simulator()
    ev = sim.schedule_event(5.0, lambda: None)
    sim.schedule(6.0, lambda: None)
    assert sim.pending == 2
    ev.cancel()
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("early"))
    sim.schedule(100.0, lambda: fired.append("late"))
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()  # resume to completion
    assert fired == ["early", "late"]


def test_run_until_beyond_all_events_advances_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=99.0)
    assert sim.now == 99.0


def test_max_events_guard_raises():
    sim = Simulator()

    def respawn():
        sim.schedule(0.0, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_run_not_reentrant():
    sim = Simulator()
    err = {}

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            err["e"] = exc

    sim.schedule(1.0, inner)
    sim.run()
    assert "e" in err


def test_drain_cancelled_compacts_heap():
    sim = Simulator()
    events = [sim.schedule_event(float(i + 1), lambda: None) for i in range(10)]
    for ev in events[:9]:
        ev.cancel()
    sim.drain_cancelled()
    sim.run()
    assert sim.now == 10.0


# --------------------------------------------------------------- fast path


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_delay_rejected(bad):
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(bad, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(bad, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_event(bad, lambda: None)


def test_schedule_event_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_event(-2.0, lambda: None)


def test_call_soon_interleaves_with_schedule_by_seq():
    """Lane entries and same-instant heap entries fire in scheduling order."""
    sim = Simulator()
    fired = []
    sim.call_soon(lambda: fired.append("a"))
    sim.schedule(0.0, lambda: fired.append("b"))
    sim.schedule_event(0.0, lambda: fired.append("c"))  # heap-routed
    sim.call_soon(lambda: fired.append("d"))
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_lane_merges_with_due_heap_events():
    """A callback posting zero-delay work does not starve due heap events
    scheduled earlier for the same instant."""
    sim = Simulator()
    fired = []

    def at_ten():
        fired.append("heap1")
        sim.call_soon(lambda: fired.append("soon"))

    sim.schedule(10.0, at_ten)
    sim.schedule(10.0, lambda: fired.append("heap2"))
    sim.run()
    # heap2 (seq 2) precedes the lane entry posted at t=10 (seq 3)
    assert fired == ["heap1", "heap2", "soon"]


def test_auto_drain_compacts_bloated_heap():
    from repro.sim.engine import DRAIN_MIN_CANCELLED

    sim = Simulator()
    n = DRAIN_MIN_CANCELLED * 2
    events = [sim.schedule_event(float(i + 1), lambda: None) for i in range(n)]
    survivors = 10
    for ev in events[survivors:]:
        ev.cancel()
    # cancelled entries exceeded half the heap -> compacted automatically
    assert len(sim._heap) < n // 2
    assert sim.pending == survivors
    sim.run()
    assert sim.now == float(survivors)


def test_fastpath_stats_accounting():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.call_soon(lambda: None)
    sim.schedule(0.0, lambda: None)
    sim.run()
    stats = sim.fastpath_stats()
    assert stats["events_fired"] == 3
    assert stats["immediate_fired"] == 2
    assert stats["heap_fired"] == 1
    assert stats["inline_advances"] == 0


def test_slow_path_routes_everything_through_heap():
    sim = Simulator(fast_path=False)
    fired = []
    sim.call_soon(lambda: fired.append("a"))
    sim.schedule(0.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("c"))
    assert not sim.advance_inline(0.5)
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.fastpath_stats()["immediate_fired"] == 0
    assert sim.fastpath_stats()["inline_advances"] == 0


def test_advance_inline_refuses_when_event_in_window():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    assert not sim.advance_inline(5.0)  # head exactly at the boundary
    assert sim.advance_inline(4.0)
    assert sim.now == 4.0
    assert sim.events_fired == 1  # stands in for the skipped resume event


def test_advance_inline_refuses_with_lane_pending():
    sim = Simulator()
    sim.call_soon(lambda: None)
    assert not sim.advance_inline(1.0)


def test_advance_inline_ignores_cancelled_head():
    sim = Simulator()
    ev = sim.schedule_event(2.0, lambda: None)
    ev.cancel()
    assert sim.advance_inline(10.0)
    assert sim.now == 10.0


def test_step_merges_lane_and_heap():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("later"))
    sim.call_soon(lambda: fired.append("now"))
    assert sim.step() is True
    assert fired == ["now"]
    assert sim.step() is True
    assert fired == ["now", "later"]
    assert sim.step() is False


def test_max_events_counts_inline_advances():
    """Charge fusion must not dodge the runaway guard: inline advances
    consume max_events budget exactly like the resume events they replace."""
    sim = Simulator()
    state = {"n": 0}

    def spin():
        state["n"] += 1
        if not sim.advance_inline(1.0):
            sim.schedule(1.0, spin)
            return
        spin()

    sim.schedule(1.0, spin)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)
    assert state["n"] <= 51


# --------------------------------------------------------------- schedule_many


def test_schedule_many_empty_batch_is_a_noop():
    sim = Simulator()
    sim.schedule_many(5.0, [])
    sim.schedule_many(0.0, [])
    assert sim._seq == 0
    assert sim.step() is False
    assert sim.now == 0.0


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0])
def test_schedule_many_validates_delay_even_for_empty_batch(delay):
    # a broken delay is a caller bug regardless of batch size
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_many(delay, [])


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), -0.5])
def test_schedule_many_rejects_bad_delay_with_items(delay):
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_many(delay, [lambda: None])


@pytest.mark.parametrize("fast_path", [True, False])
@pytest.mark.parametrize("delay", [0.0, 3.0])
def test_schedule_many_matches_individual_schedules(fast_path, delay):
    """One batched call is bit-identical to N individual schedule() calls:
    same firing order, same sequence-number consumption, same clock."""

    def drive(batch: bool) -> tuple[list, float, int]:
        sim = Simulator(fast_path=fast_path)
        fired = []
        fns = [lambda t=tag: fired.append(t) for tag in range(6)]
        sim.schedule(1.0, lambda: fired.append("early"))
        if batch:
            sim.schedule_many(delay, fns)
        else:
            for fn in fns:
                sim.schedule(delay, fn)
        sim.schedule(delay if delay else 1.0, lambda: fired.append("late"))
        sim.run()
        return fired, sim.now, sim._seq

    assert drive(True) == drive(False)


def test_schedule_many_interleaves_with_cancelled_handles():
    """Batched entries merge by (time, seq) with handle-bearing events,
    including ones cancelled before and after the batch is enqueued."""

    def drive(batch: bool) -> tuple[list, int, int]:
        sim = Simulator()
        fired = []
        before = [sim.schedule_event(2.0, lambda i=i: fired.append(("b", i)))
                  for i in range(4)]
        before[1].cancel()  # cancelled before the batch exists
        fns = [lambda t=t: fired.append(("m", t)) for t in range(4)]
        if batch:
            sim.schedule_many(2.0, fns)
        else:
            for fn in fns:
                sim.schedule(2.0, fn)
        after = [sim.schedule_event(2.0, lambda i=i: fired.append(("a", i)))
                 for i in range(3)]
        sim.schedule(1.0, lambda: (before[3].cancel(), after[0].cancel()))
        sim.run()
        return fired, sim._seq, sim.events_fired

    fired, _seq, _ev = drive(True)
    assert drive(True) == drive(False)
    assert ("b", 1) not in fired and ("b", 3) not in fired
    assert ("a", 0) not in fired
    # survivors fire in scheduling order across all three groups
    assert fired[-8:] == [("b", 0), ("b", 2), ("m", 0), ("m", 1),
                          ("m", 2), ("m", 3), ("a", 1), ("a", 2)]


def test_schedule_many_accepts_any_iterable():
    sim = Simulator()
    fired = []
    sim.schedule_many(1.0, (lambda t=tag: fired.append(t) for tag in range(3)))
    sim.run()
    assert fired == [0, 1, 2]
