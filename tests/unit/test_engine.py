"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, lambda: fired.append("c"))
    sim.schedule(10.0, lambda: fired.append("a"))
    sim.schedule(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_times_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(7.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(10.0, outer)
    sim.run()
    assert fired == [("outer", 10.0), ("inner", 15.0)]


def test_zero_delay_event_fires_at_now():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(5.0, lambda: fired.append(1))
    sim.schedule(3.0, ev.cancel)
    sim.run()
    assert fired == []
    assert not ev.alive


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(5.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_pending_counts_live_events():
    sim = Simulator()
    ev = sim.schedule(5.0, lambda: None)
    sim.schedule(6.0, lambda: None)
    assert sim.pending == 2
    ev.cancel()
    # lazy deletion: pending decremented when popped, so run to find out
    sim.run()
    assert sim.pending == 0


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("early"))
    sim.schedule(100.0, lambda: fired.append("late"))
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()  # resume to completion
    assert fired == ["early", "late"]


def test_run_until_beyond_all_events_advances_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=99.0)
    assert sim.now == 99.0


def test_max_events_guard_raises():
    sim = Simulator()

    def respawn():
        sim.schedule(0.0, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_run_not_reentrant():
    sim = Simulator()
    err = {}

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            err["e"] = exc

    sim.schedule(1.0, inner)
    sim.run()
    assert "e" in err


def test_drain_cancelled_compacts_heap():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for ev in events[:9]:
        ev.cancel()
    sim.drain_cancelled()
    sim.run()
    assert sim.now == 10.0
