"""Unit tests for error paths and edge cases across the runtimes."""

import numpy as np
import pytest

from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.errors import (
    GlobalPointerError,
    RemoteInvocationError,
    RuntimeStateError,
    SimulationError,
)
from repro.machine.cluster import Cluster
from repro.splitc import SplitCRuntime


class TestSplitCErrors:
    def _rt(self, n=2):
        cluster = Cluster(n)
        rt = SplitCRuntime(cluster)
        for q in range(n):
            rt.memory(q).alloc("x", 4)
        return rt

    def test_bulk_get_remote_destination_rejected(self):
        rt = self._rt()

        def program(proc):
            if proc.my_node == 0:
                yield from proc.bulk_get(proc.gptr(1, "x", 0), proc.gptr(1, "x", 0), 2)
            yield from proc.barrier()

        with pytest.raises(Exception):
            rt.run_spmd(program)

    def test_remote_read_out_of_bounds_is_loud(self):
        rt = self._rt()

        def program(proc):
            if proc.my_node == 0:
                yield from proc.read(proc.gptr(1, "x", 99))
            yield from proc.barrier()

        with pytest.raises(Exception):
            rt.run_spmd(program)

    def test_unknown_region_remote_access(self):
        rt = self._rt()

        def program(proc):
            if proc.my_node == 0:
                yield from proc.read(proc.gptr(1, "ghost", 0))
            yield from proc.barrier()

        with pytest.raises(Exception):
            rt.run_spmd(program)

    def test_unknown_rpc_name(self):
        rt = self._rt()

        def program(proc):
            if proc.my_node == 0:
                yield from proc.atomic_rpc(1, "no_such_fn")
            yield from proc.barrier()

        with pytest.raises(Exception):
            rt.run_spmd(program)

    def test_await_more_stores_than_sent_deadlocks(self):
        rt = self._rt()

        def program(proc):
            if proc.my_node == 1:
                yield from proc.await_stores(1)  # nobody stores
            yield from proc.barrier()

        with pytest.raises(Exception):
            rt.run_spmd(program)


@processor_class
class Fragile(ProcessorObject):
    @remote(threaded=True)
    def divide(self, a, b):
        return a / b

    @remote
    def nonthreaded_divide(self, a, b):
        return a / b

    @remote(atomic=True)
    def atomic_raise(self):
        raise KeyError("inside atomic")
        yield


class TestCCppErrors:
    def _run(self, program, n=2):
        rt = CCppRuntime(Cluster(n))
        t = rt.launch(0, program)
        rt.run()
        return rt, t.result

    def test_threaded_exception_carries_type_and_message(self):
        def program(ctx):
            gp = yield from ctx.create(1, Fragile)
            try:
                yield from ctx.rmi(gp, "divide", 1.0, 0.0)
            except RemoteInvocationError as exc:
                return exc.detail

        _, detail = self._run(program)
        assert "ZeroDivisionError" in detail

    def test_nonthreaded_exception_also_propagates(self):
        def program(ctx):
            gp = yield from ctx.create(1, Fragile)
            try:
                yield from ctx.rmi(gp, "nonthreaded_divide", 1.0, 0.0)
            except RemoteInvocationError as exc:
                return "caught"

        _, out = self._run(program)
        assert out == "caught"

    def test_atomic_lock_released_after_exception(self):
        """A raising atomic method must not leave the object's atomicity
        lock held (else the next atomic RMI deadlocks)."""

        def program(ctx):
            gp = yield from ctx.create(1, Fragile)
            for _ in range(2):
                try:
                    yield from ctx.rmi(gp, "atomic_raise")
                except RemoteInvocationError:
                    pass
            return "survived"

        _, out = self._run(program)
        assert out == "survived"

    def test_create_unregistered_class_rejected(self):
        def program(ctx):
            yield from ctx.create(1, "NotARealClass")

        with pytest.raises(SimulationError):
            self._run(program)

    def test_gp_read_unknown_region(self):
        def program(ctx):
            yield from ctx.gp_read(ctx.data_ptr("nope").__class__(1, "nope", 0))

        with pytest.raises(Exception):
            self._run(program)
