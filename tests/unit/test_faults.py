"""Unit tests for the fault-injection layer (machine/faults.py).

Covers rule validation and matching, deterministic decisions from the
seed, node outage windows, and the network-level accounting the plan
drives (packets_dropped / packets_duplicated, quiescent() correctness).
"""

import pytest

from repro.errors import SimulationError
from repro.machine.cluster import Cluster
from repro.machine.faults import DELIVER, DROP, FaultPlan, FaultRule, NodeFault
from repro.machine.network import Packet
from repro.sim.account import CounterNames


def _send(cluster, *, src=0, dst=1, kind="am.short", nbytes=16, payload=None):
    cluster.network.transmit(
        Packet(src=src, dst=dst, kind=kind, payload=payload, nbytes=nbytes)
    )


class TestValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(SimulationError):
            FaultRule(drop=1.5).validate()
        with pytest.raises(SimulationError):
            FaultRule(duplicate=-0.1).validate()

    def test_probabilities_must_not_sum_past_one(self):
        with pytest.raises(SimulationError):
            FaultRule(drop=0.5, duplicate=0.4, delay=0.2).validate()
        FaultRule(drop=0.5, duplicate=0.3, delay=0.2).validate()  # exactly 1 ok

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            FaultRule(delay=0.1, delay_us=-1.0).validate()

    def test_empty_node_fault_window_rejected(self):
        with pytest.raises(SimulationError):
            NodeFault(0, start=5.0, duration=0.0).validate()
        with pytest.raises(SimulationError):
            NodeFault(0, start=-1.0).validate()


class TestMatching:
    def test_wildcards_and_kind_prefix(self):
        rule = FaultRule(kind="am.")
        assert rule.matches(0, 1, "am.short")
        assert rule.matches(3, 2, "am.credit")
        assert not rule.matches(0, 1, "mpl")
        pinned = FaultRule(src=0, dst=1, kind="am.short")
        assert pinned.matches(0, 1, "am.short")
        assert not pinned.matches(1, 0, "am.short")
        assert not pinned.matches(0, 2, "am.short")

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=[FaultRule(kind="am.short", drop=1.0), FaultRule(drop=0.0)])
        verdict = plan.decide(0, 1, "am.short", 0.0, 20.0)
        assert verdict.action is DROP


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            plan = FaultPlan(seed=seed).drop("am.", rate=0.3).delay(
                "am.", rate=0.2, delay_us=50.0, jitter_us=25.0
            )
            return [
                (v.action, v.extra_delay_us, v.duplicate)
                for v in (plan.decide(0, 1, "am.short", float(i), float(i) + 20.0) for i in range(200))
            ]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_empty_plan_is_inert(self):
        plan = FaultPlan()
        assert plan.empty
        for i in range(10):
            v = plan.decide(0, 1, "am.short", float(i), float(i) + 20.0)
            assert v.action is DELIVER and not v.duplicate and v.extra_delay_us == 0.0
        assert plan.decisions == {"drop": 0, "duplicate": 0, "delay": 0}

    def test_rate_extremes(self):
        everything = FaultPlan().drop("am.", rate=1.0)
        nothing = FaultPlan().drop("am.", rate=0.0)
        for i in range(50):
            assert everything.decide(0, 1, "am.short", 0.0, 20.0).action is DROP
            assert nothing.decide(0, 1, "am.short", 0.0, 20.0).action is DELIVER


class TestNodeFaults:
    def test_failed_node_drops_both_directions(self):
        plan = FaultPlan().fail_node(1, at=0.0)
        assert plan.decide(1, 0, "am.short", 5.0, 25.0).action is DROP  # from dark
        assert plan.decide(0, 1, "am.short", 5.0, 25.0).action is DROP  # to dark
        assert plan.decide(0, 2, "am.short", 5.0, 25.0).action is DELIVER

    def test_pause_holds_inbound_until_window_end(self):
        plan = FaultPlan().pause_node(1, at=10.0, duration=100.0)
        v = plan.decide(0, 1, "am.short", 5.0, 25.0)  # arrives mid-window
        assert v.action is DELIVER
        assert v.extra_delay_us == pytest.approx(110.0 - 25.0)
        # outside the window nothing happens
        assert plan.decide(0, 1, "am.short", 200.0, 220.0).extra_delay_us == 0.0

    def test_paused_node_cannot_send_during_window(self):
        plan = FaultPlan().pause_node(0, at=0.0, duration=50.0)
        assert plan.decide(0, 1, "am.short", 10.0, 30.0).action is DROP
        assert plan.decide(0, 1, "am.short", 60.0, 80.0).action is DELIVER


class TestNetworkIntegration:
    def test_drop_all_counts_and_stays_quiescent(self):
        cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0))
        for _ in range(3):
            _send(cluster)
        cluster.sim.run()
        net = cluster.network
        assert net.packets_sent == 3
        assert net.packets_dropped == 3
        assert net.packets_delivered == 0
        assert not cluster.nodes[1].inbox
        # sent != delivered, yet nothing is actually in flight or queued
        assert net.quiescent()
        counters = cluster.aggregate_counters()
        assert counters.get(CounterNames.PKT_DROPPED) == 3

    def test_duplicate_delivers_two_copies(self):
        cluster = Cluster(2, faults=FaultPlan().duplicate("am.", rate=1.0))
        _send(cluster)
        cluster.sim.run()
        net = cluster.network
        assert net.packets_duplicated == 1
        assert net.packets_delivered == 2
        inbox = cluster.nodes[1].inbox
        assert len(inbox) == 2
        assert inbox[0].pid != inbox[1].pid  # distinct packets, same payload
        assert net.in_flight == 0
        assert not net.quiescent()  # both copies await a poll
        assert cluster.aggregate_counters().get(CounterNames.PKT_DUPLICATED) == 1

    def test_delay_pushes_arrival_and_counts(self):
        cluster = Cluster(
            2, faults=FaultPlan().delay("am.", rate=1.0, delay_us=500.0)
        )
        _send(cluster, nbytes=0)
        cluster.sim.run()
        wire = cluster.costs.net.wire_latency
        assert cluster.sim.now == pytest.approx(wire + 500.0)
        assert cluster.nodes[1].inbox[0].arrival_time == pytest.approx(wire + 500.0)
        assert cluster.aggregate_counters().get(CounterNames.PKT_DELAYED) == 1

    def test_no_faults_accounting_unchanged(self):
        cluster = Cluster(2)
        _send(cluster)
        cluster.sim.run()
        net = cluster.network
        assert net.packets_dropped == 0 and net.packets_duplicated == 0
        assert net.packets_sent == net.packets_delivered == 1
        assert len(cluster.nodes[1].inbox) == 1

    def test_in_flight_registry_tracks_wire(self):
        cluster = Cluster(2)
        _send(cluster)
        assert cluster.network.in_flight == 1
        assert cluster.network.describe_in_flight()
        cluster.sim.run()
        assert cluster.network.in_flight == 0
        assert cluster.network.describe_in_flight() == []
