"""Unit tests for Node, Network, Cluster."""

import pytest

from repro.errors import SimulationError
from repro.machine.cluster import Cluster
from repro.machine.costs import SP2_COSTS
from repro.machine.network import Network, Packet
from repro.machine.node import Node
from repro.sim.engine import Simulator


def _fabric(n=2):
    cluster = Cluster(n)
    return cluster, cluster.network


class TestNode:
    def test_negative_id_rejected(self):
        with pytest.raises(SimulationError):
            Node(-1, Simulator(), SP2_COSTS)

    def test_attach_and_lookup_service(self):
        cluster, _ = _fabric(1)
        node = cluster.nodes[0]
        node.attach("svc", "payload")
        assert node.service("svc") == "payload"

    def test_reattach_rejected(self):
        cluster, _ = _fabric(1)
        node = cluster.nodes[0]
        node.attach("svc", 1)
        with pytest.raises(SimulationError):
            node.attach("svc", 2)

    def test_missing_service_rejected(self):
        cluster, _ = _fabric(1)
        with pytest.raises(SimulationError):
            cluster.nodes[0].service("ghost")


class TestNetwork:
    def test_delivery_after_wire_time(self):
        cluster, net = _fabric()
        pkt = Packet(src=0, dst=1, kind="t", payload=None, nbytes=100)
        net.transmit(pkt)
        cluster.sim.run()
        expected = SP2_COSTS.net.short_wire_time(100)
        assert pkt.arrival_time == pytest.approx(expected)
        assert list(cluster.nodes[1].inbox) == [pkt]

    def test_bulk_path_is_cheaper_per_byte(self):
        cluster, net = _fabric()
        a = Packet(src=0, dst=1, kind="t", payload=None, nbytes=1000)
        b = Packet(src=0, dst=1, kind="t", payload=None, nbytes=1000)
        net.transmit(a)
        net.transmit(b, bulk=True)
        cluster.sim.run()
        assert b.arrival_time < a.arrival_time

    def test_fifo_per_pair(self):
        cluster, net = _fabric()
        pkts = [Packet(src=0, dst=1, kind="t", payload=i, nbytes=8) for i in range(5)]
        for p in pkts:
            net.transmit(p)
        cluster.sim.run()
        assert [p.payload for p in cluster.nodes[1].inbox] == [0, 1, 2, 3, 4]

    def test_loopback_still_pays_wire(self):
        cluster, net = _fabric(1)
        pkt = Packet(src=0, dst=0, kind="t", payload=None, nbytes=8)
        net.transmit(pkt)
        cluster.sim.run()
        assert cluster.sim.now > 0
        assert cluster.nodes[0].has_mail

    def test_unknown_destination_rejected(self):
        _, net = _fabric(1)
        with pytest.raises(SimulationError):
            net.transmit(Packet(src=0, dst=7, kind="t", payload=None, nbytes=8))

    def test_quiescent_tracks_in_flight_and_inboxes(self):
        cluster, net = _fabric()
        assert net.quiescent()
        pkt = Packet(src=0, dst=1, kind="t", payload=None, nbytes=8)
        net.transmit(pkt)
        assert not net.quiescent()  # in flight
        cluster.sim.run()
        assert not net.quiescent()  # delivered but unread
        cluster.nodes[1].inbox.clear()
        assert net.quiescent()

    def test_byte_accounting(self):
        cluster, net = _fabric()
        net.transmit(Packet(src=0, dst=1, kind="t", payload=None, nbytes=64))
        net.transmit(Packet(src=1, dst=0, kind="t", payload=None, nbytes=36))
        cluster.sim.run()
        assert net.bytes_carried == 100
        assert net.packets_sent == net.packets_delivered == 2

    def test_duplicate_registration_rejected(self):
        cluster, net = _fabric(1)
        with pytest.raises(SimulationError):
            net.register(cluster.nodes[0])


class TestCluster:
    def test_size_and_node_ids(self):
        cluster = Cluster(4)
        assert cluster.size == 4
        assert [n.nid for n in cluster.nodes] == [0, 1, 2, 3]

    def test_at_least_one_node(self):
        with pytest.raises(SimulationError):
            Cluster(0)

    def test_aggregates_merge_all_nodes(self):
        from repro.sim.account import Category

        cluster = Cluster(2)
        cluster.nodes[0].charge(Category.CPU, 2.0)
        cluster.nodes[1].charge(Category.CPU, 3.0)
        assert cluster.aggregate_account().get(Category.CPU) == 5.0

    def test_run_returns_final_time(self):
        from repro.sim.account import Category
        from repro.sim.effects import Charge

        cluster = Cluster(1)

        def body():
            yield Charge(12.5, Category.CPU)

        cluster.launch(0, body())
        assert cluster.run() == 12.5

    def test_invalid_costs_rejected(self):
        from repro.machine.costs import NetworkCosts
        from dataclasses import replace

        bad = replace(SP2_COSTS, net=NetworkCosts(wire_latency=-1.0))
        with pytest.raises(Exception):
            Cluster(1, costs=bad)
