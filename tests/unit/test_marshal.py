"""Unit tests for the marshalling layer."""

import numpy as np
import pytest

from repro.errors import MarshalError
from repro.marshal import (
    Marshallable,
    marshal_args,
    pack_object,
    register_serializer,
    unmarshal_args,
    unpack_object,
)
from repro.marshal.packer import Packer, Unpacker


class TestPacker:
    def test_scalar_roundtrip(self):
        p = Packer()
        p.put_u8(200).put_u32(1 << 30).put_i64(-12345).put_f64(3.25)
        u = Unpacker(p.getvalue())
        assert u.get_u8() == 200
        assert u.get_u32() == 1 << 30
        assert u.get_i64() == -12345
        assert u.get_f64() == 3.25
        assert u.done()

    def test_bytes_and_str_roundtrip(self):
        p = Packer()
        p.put_bytes(b"\x00\x01payload").put_str("méthode::f")
        u = Unpacker(p.getvalue())
        assert u.get_bytes() == b"\x00\x01payload"
        assert u.get_str() == "méthode::f"

    def test_ndarray_roundtrip_shapes(self):
        for arr in (
            np.arange(6, dtype=np.float64),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.zeros((0,), dtype=np.float64),
        ):
            p = Packer()
            p.put_ndarray(arr)
            out = Unpacker(p.getvalue()).get_ndarray()
            assert out.dtype == arr.dtype
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_u8_range_checked(self):
        with pytest.raises(MarshalError):
            Packer().put_u8(256)

    def test_u32_range_checked(self):
        with pytest.raises(MarshalError):
            Packer().put_u32(-1)

    def test_underrun_raises(self):
        u = Unpacker(b"\x01")
        with pytest.raises(MarshalError, match="underrun"):
            u.get_u32()

    def test_remaining_tracks_position(self):
        u = Unpacker(b"\x01\x02\x03")
        assert u.remaining == 3
        u.get_u8()
        assert u.remaining == 2
        assert not u.done()


class TestObjectSerialization:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            False,
            0,
            -(2**40),
            3.14159,
            "string",
            b"bytes",
            (1, "two", 3.0),
            [1, [2, [3]]],
            {"k": 1, 2: "v"},
            (),
        ],
    )
    def test_builtin_roundtrip(self, obj):
        p = Packer()
        pack_object(p, obj)
        assert unpack_object(Unpacker(p.getvalue())) == obj

    def test_bool_is_not_int_after_roundtrip(self):
        p = Packer()
        pack_object(p, True)
        out = unpack_object(Unpacker(p.getvalue()))
        assert out is True

    def test_ndarray_roundtrip(self):
        arr = np.linspace(0, 1, 20)
        p = Packer()
        pack_object(p, arr)
        out = unpack_object(Unpacker(p.getvalue()))
        assert np.array_equal(out, arr)

    def test_unmarshalable_type_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError, match="register a serializer"):
            pack_object(Packer(), Opaque())

    def test_marshallable_roundtrip(self):
        class Point(Marshallable):
            def __init__(self, x, y):
                self.x, self.y = x, y

            def cc_pack(self, p):
                p.put_f64(self.x).put_f64(self.y)

            @classmethod
            def cc_unpack(cls, u):
                return cls(u.get_f64(), u.get_f64())

        p = Packer()
        pack_object(p, Point(1.5, -2.5))
        out = unpack_object(Unpacker(p.getvalue()))
        assert (out.x, out.y) == (1.5, -2.5)

    def test_register_serializer_conflict(self):
        register_serializer("test.conflict", lambda o, p: None, lambda u: None)
        with pytest.raises(MarshalError):
            register_serializer("test.conflict", lambda o, p: None, lambda u: None)
        register_serializer(
            "test.conflict", lambda o, p: None, lambda u: None, replace=True
        )


class TestArgsMarshalling:
    def test_empty_args_is_empty_payload(self):
        payload, n = marshal_args(())
        assert payload == b""
        assert n == 0
        assert unmarshal_args(payload) == ()

    def test_roundtrip_mixed_args(self):
        args = (1, "two", 3.0, [4, 5], None)
        payload, n = marshal_args(args)
        assert n == 5
        assert unmarshal_args(payload) == args

    def test_ndarray_arg_roundtrip(self):
        arr = np.arange(20, dtype=np.float64)
        payload, _ = marshal_args((arr,))
        (out,) = unmarshal_args(payload)
        assert np.array_equal(out, arr)

    def test_trailing_bytes_rejected(self):
        payload, _ = marshal_args((1,))
        with pytest.raises(MarshalError, match="trailing"):
            unmarshal_args(payload + b"\x00")

    def test_payload_sizes_scale_with_content(self):
        small, _ = marshal_args((1.0,))
        large, _ = marshal_args((np.zeros(100),))
        assert len(large) > len(small) + 700  # 100 doubles dominate
