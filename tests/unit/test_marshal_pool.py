"""Property tests for the pooled zero-copy marshalling path.

The invariants pinned down here are the ones the wall-clock fast path
leans on:

* concurrent RMIs never alias each other's payload buffers;
* a payload view stays byte-stable even when its backing buffer is
  returned to the pool while the view is alive (the pool *abandons* it);
* steady-state RMI traffic leases only recycled buffers — zero new
  allocations once warm;
* receiver-side recycling routes a buffer back to the pool that leased
  it, which may live on a different node.
"""

import numpy as np

from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.machine.cluster import Cluster
from repro.marshal.pool import BufferPool
from repro.marshal.serialize import marshal_args, unmarshal_args


@processor_class
class PoolTarget(ProcessorObject):
    @remote
    def plain(self, x=0):
        return x

    @remote(threaded=True)
    def echo_array(self, arr):
        return np.asarray(arr) * 2.0


def _rt(n=2, **kw):
    return CCppRuntime(Cluster(n), **kw)


def _run(rt, program):
    thread = rt.launch(0, program)
    rt.run()
    return thread.result


class TestPoolMechanics:
    def test_warm_lease_reuses_recycled_buffer(self):
        pool = BufferPool()
        buf = pool.take()
        buf += b"payload"
        pool.give(buf)
        assert pool.free_count == 1
        again = pool.take()
        assert again is buf
        assert len(again) == 0  # reset on recycle
        assert pool.stats()["reuses"] == 1

    def test_view_stable_after_abandoned_recycle(self):
        """Returning a buffer while a view is still exported must abandon
        it, never mutate bytes under the live view."""
        pool = BufferPool()
        buf = pool.take()
        buf += b"stable-bytes"
        view = memoryview(buf)
        pool.give(buf)
        assert pool.abandoned == 1
        assert pool.free_count == 0
        assert bytes(view) == b"stable-bytes"
        # the next lease is a fresh buffer, not the abandoned one
        assert pool.take() is not buf

    def test_recycle_view_routes_to_origin_pool(self):
        """Payloads are packed on the sender and recycled on the receiver;
        the buffer must flow back to the pool that leased it."""
        sender_pool = BufferPool()
        receiver_pool = BufferPool()
        view = sender_pool.take_packed(b"cross-node")
        receiver_pool.recycle_view(view)
        assert sender_pool.free_count == 1
        assert sender_pool.recycles == 1
        assert receiver_pool.free_count == 0
        assert receiver_pool.recycles == 0

    def test_recycle_foreign_view_is_noop(self):
        """A view over caller-owned bytes is released but never pooled."""
        pool = BufferPool()
        view = memoryview(b"not ours")
        pool.recycle_view(view)
        assert pool.free_count == 0
        assert pool.recycles == 0
        # released: any access must now fail
        try:
            view.tobytes()
        except ValueError:
            pass
        else:  # pragma: no cover - would mean release() regressed
            raise AssertionError("view should have been released")

    def test_take_packed_accepts_ndarray(self):
        pool = BufferPool()
        arr = np.arange(4, dtype=np.float64)
        view = pool.take_packed(arr)
        assert bytes(view) == arr.tobytes()
        pool.recycle_view(view)
        assert pool.free_count == 1


class TestMarshalRoundtrip:
    def test_unmarshal_results_survive_buffer_reuse(self):
        """Every value extracted from a pooled payload owns its bytes:
        recycling and repacking the buffer must not disturb them."""
        pool = BufferPool()
        arr = np.linspace(0.0, 1.0, 16)
        payload, _ = marshal_args(("hello", 42, 2.5, b"raw", arr), pool=pool)
        assert type(payload) is memoryview
        values = unmarshal_args(payload, pool=pool)  # recycles the buffer
        assert pool.free_count == 1
        # clobber the recycled buffer with a different message
        other, _ = marshal_args((b"\xff" * 64,), pool=pool)
        assert values[0] == "hello"
        assert values[1] == 42
        assert values[2] == 2.5
        assert values[3] == b"raw"
        np.testing.assert_array_equal(values[4], arr)
        pool.recycle_view(other)


class TestPoolUnderRMI:
    def test_no_aliasing_across_concurrent_rmis(self):
        """Overlapping RMIs with distinct array payloads each see their
        own bytes — no pooled buffer is shared while in use."""
        rt = _rt()
        inputs = [np.full(16, float(i)) for i in range(6)]

        def program(ctx):
            gp = yield from ctx.create(1, PoolTarget)
            futures = []
            for arr in inputs:
                fut = yield from ctx.rmi_future(gp, "echo_array", arr)
                futures.append(fut)
            results = []
            for fut in futures:
                results.append((yield from fut.get()))
            return results

        results = _run(rt, program)
        for arr, res in zip(inputs, results):
            np.testing.assert_array_equal(res, arr * 2.0)

    def test_null_rmi_steady_state_allocates_nothing(self):
        """After warmup, 100 null RMIs lease only recycled buffers on
        every node — the paper's persistent-buffer claim, by counter."""
        rt = _rt()
        pools = [n.marshal_pool for n in rt.cluster.nodes]

        def program(ctx):
            gp = yield from ctx.create(1, PoolTarget)
            for _ in range(20):  # warm the freelists
                yield from ctx.rmi(gp, "plain")
            marks = [p.allocs for p in pools]
            lease_marks = [p.leases for p in pools]
            for _ in range(100):
                yield from ctx.rmi(gp, "plain")
            allocs = [p.allocs - m for p, m in zip(pools, marks)]
            leases = [p.leases - m for p, m in zip(pools, lease_marks)]
            return allocs, leases

        allocs, leases = _run(rt, program)
        assert allocs == [0, 0], f"steady-state allocations: {allocs}"
        # the traffic really went through the pools (callee packs replies)
        assert leases[1] >= 100


class TestDoubleRecycleGuard:
    """Regression: give() used to accept the same buffer twice, putting
    two references to one buffer on the freelist — two later takers would
    then alias each other's payload bytes."""

    def test_double_give_raises(self):
        from repro.errors import RuntimeStateError
        import pytest

        pool = BufferPool()
        buf = pool.take()
        pool.give(buf)
        with pytest.raises(RuntimeStateError):
            pool.give(buf)
        # exactly one freelist entry: the next two takes must not alias
        a = pool.take()
        b = pool.take()
        assert a is not b

    def test_give_foreign_buffer_raises(self):
        from repro.errors import RuntimeStateError
        import pytest

        pool, other = BufferPool(), BufferPool()
        buf = other.take()
        with pytest.raises(RuntimeStateError):
            pool.give(buf)
        with pytest.raises(RuntimeStateError):
            pool.give(bytearray(b"never leased"))

    def test_retake_after_give_is_clean_lease(self):
        """The recycle → take cycle re-arms the custody bit: a buffer can
        go around the pool any number of times."""
        pool = BufferPool()
        buf = pool.take()
        for _ in range(3):
            buf += b"x"
            pool.give(buf)
            assert pool.take() is buf
        assert pool.recycles == 3
