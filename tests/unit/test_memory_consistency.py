"""Memory-consistency semantics of the Split-C access taxonomy.

Split-C's contract (Culler et al.): blocking accesses complete before the
statement returns; split-phase accesses complete by ``sync()``; one-way
stores complete by the target's synchronization.  These tests pin the
ordering guarantees our runtime must (and must not) provide.
"""

import pytest

from repro.machine.cluster import Cluster
from repro.splitc import SplitCRuntime


def _rt(n=2, size=8):
    cluster = Cluster(n)
    rt = SplitCRuntime(cluster)
    for q in range(n):
        rt.memory(q).alloc("m", size)
    return cluster, rt


def test_blocking_write_then_read_sees_value():
    """Program order through blocking accesses is sequential."""
    _, rt = _rt()

    def program(proc):
        if proc.my_node == 0:
            for k in range(4):
                yield from proc.write(proc.gptr(1, "m", k), float(k))
            got = []
            for k in range(4):
                got.append((yield from proc.read(proc.gptr(1, "m", k))))
            yield from proc.barrier()
            return got
        yield from proc.barrier()

    results = rt.run_spmd(program)
    assert results[0] == [0.0, 1.0, 2.0, 3.0]


def test_split_phase_not_ordered_until_sync():
    """A split-phase get is NOT guaranteed complete before sync() —
    the destination may still hold the old value right after issue."""
    cluster, rt = _rt()
    observed = {}

    def program(proc):
        if proc.my_node == 0:
            proc.local("m")[0] = -1.0
            yield from proc.get(proc.gptr(0, "m", 0), proc.gptr(1, "m", 3))
            observed["before_sync"] = float(proc.local("m")[0])
            yield from proc.sync()
            observed["after_sync"] = float(proc.local("m")[0])
        yield from proc.barrier()

    rt.memory(1).region("m")[3] = 42.0
    rt.run_spmd(program)
    assert observed["before_sync"] == -1.0  # still the old value
    assert observed["after_sync"] == 42.0


def test_same_destination_blocking_writes_apply_in_program_order():
    """Two blocking writes to one location: the later one wins."""
    _, rt = _rt()

    def program(proc):
        if proc.my_node == 0:
            yield from proc.write(proc.gptr(1, "m", 0), 1.0)
            yield from proc.write(proc.gptr(1, "m", 0), 2.0)
        yield from proc.barrier()

    rt.run_spmd(program)
    assert rt.memory(1).region("m")[0] == 2.0


def test_stores_to_same_target_are_fifo():
    """One-way stores between one (src, dst) pair land in issue order
    (the network is FIFO per channel), so the last store wins."""
    _, rt = _rt()

    def program(proc):
        if proc.my_node == 0:
            for v in (1.0, 2.0, 3.0):
                yield from proc.store(proc.gptr(1, "m", 0), v)
        else:
            yield from proc.await_stores(3)
            assert proc.local("m")[0] == 3.0
        yield from proc.barrier()

    rt.run_spmd(program)


def test_read_after_remote_write_by_other_node_needs_barrier():
    """Cross-node visibility requires synchronization: node 1 sees node
    0's write only after the barrier orders them."""
    _, rt = _rt()
    seen = {}

    def program(proc):
        if proc.my_node == 0:
            yield from proc.write(proc.gptr(1, "m", 5), 7.0)
        yield from proc.barrier()
        if proc.my_node == 1:
            seen["value"] = float(proc.local("m")[5])

    rt.run_spmd(program)
    assert seen["value"] == 7.0


def test_sync_with_no_outstanding_ops_is_cheap():
    cluster, rt = _rt()

    def program(proc):
        t0 = proc.node.sim.now
        yield from proc.sync()
        return proc.node.sim.now - t0

    results = rt.run_spmd(program)
    assert all(dt < 5.0 for dt in results)
