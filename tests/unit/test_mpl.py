"""Unit tests for the MPL two-sided layer."""

import pytest

from repro.errors import RuntimeStateError
from repro.machine.cluster import Cluster
from repro.mpl import install_mpl


def _pair():
    cluster = Cluster(2)
    eps = install_mpl(cluster)
    return cluster, eps


def test_send_recv_value():
    cluster, eps = _pair()
    out = {}

    def sender(ep):
        yield from ep.send(1, 5, {"x": 42}, nbytes=32)

    def receiver(ep):
        out["v"] = yield from ep.recv(0, 5)

    cluster.launch(0, sender(eps[0]))
    cluster.launch(1, receiver(eps[1]))
    cluster.run()
    assert out["v"] == {"x": 42}


def test_tag_matching_out_of_order():
    cluster, eps = _pair()
    out = {}

    def sender(ep):
        yield from ep.send(1, 1, "first", nbytes=16)
        yield from ep.send(1, 2, "second", nbytes=16)

    def receiver(ep):
        out["tag2"] = yield from ep.recv(0, 2)  # receive tags in reverse
        out["tag1"] = yield from ep.recv(0, 1)

    cluster.launch(0, sender(eps[0]))
    cluster.launch(1, receiver(eps[1]))
    cluster.run()
    assert out == {"tag2": "second", "tag1": "first"}


def test_fifo_within_matching_key():
    cluster, eps = _pair()
    got = []

    def sender(ep):
        for i in range(4):
            yield from ep.send(1, 9, i, nbytes=16)

    def receiver(ep):
        for _ in range(4):
            got.append((yield from ep.recv(0, 9)))

    cluster.launch(0, sender(eps[0]))
    cluster.launch(1, receiver(eps[1]))
    cluster.run()
    assert got == [0, 1, 2, 3]


def test_round_trip_matches_mpl_reference():
    """Ping-pong lands near the paper's 88 us MPL round trip."""
    cluster, eps = _pair()
    rtts = []

    def pinger(ep):
        for _ in range(3):
            t0 = ep.node.sim.now
            yield from ep.send(1, 1, b"p", nbytes=16)
            yield from ep.recv(1, 2)
            rtts.append(ep.node.sim.now - t0)

    def ponger(ep):
        for _ in range(3):
            yield from ep.recv(0, 1)
            yield from ep.send(0, 2, b"q", nbytes=16)

    cluster.launch(0, pinger(eps[0]))
    cluster.launch(1, ponger(eps[1]))
    cluster.run()
    for t in rtts:
        assert 84.0 <= t <= 93.0


def test_negative_tag_rejected():
    cluster, eps = _pair()

    def sender(ep):
        yield from ep.send(1, -1, None)

    cluster.launch(0, sender(eps[0]))
    with pytest.raises(Exception):
        cluster.run()


def test_probe_nonblocking():
    cluster, eps = _pair()
    out = {}

    def sender(ep):
        yield from ep.send(1, 3, "x", nbytes=16)

    def receiver(ep):
        out["before"] = ep.probe(0, 3)
        yield from ep.recv(0, 3)
        out["after"] = ep.probe(0, 3)

    cluster.launch(0, sender(eps[0]))
    cluster.launch(1, receiver(eps[1]))
    cluster.run()
    assert out == {"before": False, "after": False} or out["after"] is False


def test_foreign_packet_kind_rejected():
    from repro.machine.network import Packet

    cluster, eps = _pair()
    cluster.network.transmit(Packet(src=0, dst=1, kind="alien", payload=None, nbytes=8))

    def receiver(ep):
        yield from ep.recv(0, 1)

    cluster.launch(1, receiver(eps[1]))
    with pytest.raises(Exception):
        cluster.run()
