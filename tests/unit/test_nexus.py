"""Unit tests for the Nexus baseline runtime."""

import pytest

from repro.ccpp import CCppRuntime, ProcessorObject, processor_class, remote
from repro.errors import CalibrationError
from repro.machine.cluster import Cluster
from repro.machine.costs import NEXUS_COSTS
from repro.nexus import NexusCCppRuntime, make_nexus_runtime


@processor_class
class NexusEcho(ProcessorObject):
    @remote(threaded=True)
    def echo(self, x):
        return x


def test_requires_nexus_cost_profile():
    with pytest.raises(CalibrationError):
        NexusCCppRuntime(Cluster(2))  # default SP2 costs


def test_factory_builds_working_runtime():
    rt = make_nexus_runtime(2)
    assert isinstance(rt, CCppRuntime)
    assert rt.cluster.costs.name == NEXUS_COSTS.name
    assert rt.stub_caching is False
    assert rt.persistent_buffers is False

    def program(ctx):
        gp = yield from ctx.create(1, NexusEcho)
        return (yield from ctx.rmi(gp, "echo", 17))

    t = rt.launch(0, program)
    rt.run()
    assert t.result == 17


def test_nexus_rmi_an_order_of_magnitude_slower():
    def program_factory(out):
        def program(ctx):
            gp = yield from ctx.create(1, NexusEcho)
            # warm (irrelevant for nexus: always cold) then measure
            yield from ctx.rmi(gp, "echo", 0)
            t0 = ctx.node.sim.now
            for _ in range(3):
                yield from ctx.rmi(gp, "echo", 1)
            out["per_rmi"] = (ctx.node.sim.now - t0) / 3

        return program

    tham_rt = CCppRuntime(Cluster(2))
    tham, nexus = {}, {}
    t = tham_rt.launch(0, program_factory(tham))
    tham_rt.run()

    nexus_rt = make_nexus_runtime(2)
    nexus_rt.launch(0, program_factory(nexus))
    nexus_rt.run()

    ratio = nexus["per_rmi"] / tham["per_rmi"]
    assert ratio > 10.0, f"Nexus should be >>10x slower, got {ratio:.1f}x"
