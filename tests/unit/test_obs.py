"""Unit tests for the observability layer (histograms, spans, Perfetto)."""

import json
import math

import pytest

from repro.am import install_am
from repro.machine.cluster import Cluster
from repro.obs import (
    LogHistogram,
    MetricNames,
    Metrics,
    SpanRecorder,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.metrics import N_BUCKETS
from repro.sim.trace import NullTracer, RecordingTracer, Tracer


class TestHistogramBucketing:
    def test_zero_lands_in_bucket_zero(self):
        h = LogHistogram()
        h.record(0.0)
        assert h.counts[0] == 1
        assert h.quantile(1.0) == 0.0

    def test_sub_one_lands_in_bucket_zero(self):
        h = LogHistogram()
        h.record(0.999)
        assert h.counts[0] == 1

    def test_power_of_two_boundaries(self):
        # bucket b covers [2^(b-1), 2^b): 1.0 -> b1, 1.999 -> b1, 2.0 -> b2
        h = LogHistogram()
        h.record(1.0)
        assert h.counts[1] == 1
        h.record(1.999)
        assert h.counts[1] == 2
        h.record(2.0)
        assert h.counts[2] == 1
        h.record(4.0)
        assert h.counts[3] == 1

    def test_infinity_lands_in_overflow_bucket(self):
        # frexp(inf) returns exponent 0 — a naive implementation would
        # file inf under bucket 0; it must go to the open last bucket
        h = LogHistogram()
        h.record(math.inf)
        assert h.counts[N_BUCKETS - 1] == 1
        assert h.quantile(1.0) == math.inf

    def test_huge_value_clamps_to_last_bucket(self):
        h = LogHistogram()
        h.record(2.0**100)
        assert h.counts[N_BUCKETS - 1] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().record(-1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().record(math.nan)

    def test_bucket_bounds_cover_the_line(self):
        lo0, hi0 = LogHistogram.bucket_bounds(0)
        assert (lo0, hi0) == (0.0, 1.0)
        prev_hi = hi0
        for b in range(1, N_BUCKETS):
            lo, hi = LogHistogram.bucket_bounds(b)
            assert lo == prev_hi  # contiguous, no gaps
            prev_hi = hi
        assert prev_hi == math.inf

    def test_bucket_bounds_range_checked(self):
        with pytest.raises(ValueError):
            LogHistogram.bucket_bounds(N_BUCKETS)


class TestHistogramStats:
    def test_empty_quantiles_are_zero(self):
        h = LogHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean() == 0.0

    def test_quantiles_clamped_to_observed_range(self):
        h = LogHistogram()
        for _ in range(10):
            h.record(100.0)
        # all mass in one bucket: every quantile is the single value
        assert h.quantile(0.01) == 100.0
        assert h.quantile(0.99) == 100.0

    def test_quantile_ordering(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 4.0, 8.0, 500.0, 1000.0):
            h.record(v)
        p = h.percentiles()
        assert p["p50"] <= p["p90"] <= p["p99"]
        assert h.vmin <= p["p50"]
        assert p["p99"] <= h.vmax

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            LogHistogram().quantile(1.5)

    def test_mean_and_extrema(self):
        h = LogHistogram()
        h.record(2.0)
        h.record(6.0)
        assert h.mean() == 4.0
        assert h.vmin == 2.0
        assert h.vmax == 6.0

    def test_merge_folds_everything(self):
        a, b = LogHistogram("a"), LogHistogram("b")
        a.record(1.0)
        b.record(1000.0)
        a.merge(b)
        assert a.count == 2
        assert a.vmin == 1.0
        assert a.vmax == 1000.0
        assert a.total == 1001.0

    def test_snapshot_shape(self):
        h = LogHistogram()
        h.record(5.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p90", "p99"}

    def test_nonzero_buckets(self):
        h = LogHistogram()
        h.record(0.5)
        h.record(3.0)
        rows = h.nonzero_buckets()
        assert rows == [(0.0, 1.0, 1), (2.0, 4.0, 1)]


class TestMetricsRegistry:
    def test_histogram_memoized(self):
        m = Metrics()
        assert m.histogram("x") is m.histogram("x")
        assert len(m) == 1

    def test_histograms_sorted(self):
        m = Metrics()
        m.histogram("zz")
        m.histogram("aa")
        assert list(m.histograms()) == ["aa", "zz"]

    def test_gauges(self):
        m = Metrics()
        m.gauge("g", 0.5)
        assert m.gauges["g"] == 0.5

    def test_metric_names_distinct(self):
        names = [
            getattr(MetricNames, a) for a in dir(MetricNames) if not a.startswith("_")
        ]
        assert len(names) == len(set(names))


class TestSpanRecorder:
    def test_tracer_base_does_not_want_spans(self):
        assert Tracer.wants_spans is False
        assert NullTracer().wants_spans is False
        assert RecordingTracer().wants_spans is False
        assert SpanRecorder().wants_spans is True

    def test_begin_end_round_trip(self):
        rec = SpanRecorder()
        sid = rec.begin(10.0, 0, "op", "detail")
        assert rec.spans[sid].open
        rec.end(sid, 25.0)
        s = rec.spans[sid]
        assert not s.open
        assert s.duration == 15.0
        assert rec.finished() == [s]

    def test_parent_links(self):
        rec = SpanRecorder()
        root = rec.begin(0.0, 0, "outer")
        child = rec.begin(1.0, 0, "inner", parent=root)
        assert rec.spans[child].parent == root
        assert rec.children_of(root) == [rec.spans[child]]

    def test_full_recorder_drops_and_end_ignores(self):
        rec = SpanRecorder(max_spans=1)
        sid0 = rec.begin(0.0, 0, "kept")
        sid1 = rec.begin(1.0, 0, "dropped")
        assert sid0 == 0
        assert sid1 == -1
        assert rec.dropped_spans == 1
        rec.end(sid1, 2.0)  # must be a silent no-op
        assert len(rec.spans) == 1

    def test_clear_resets_spans(self):
        rec = SpanRecorder()
        rec.begin(0.0, 0, "x")
        rec.dropped_spans = 3
        rec.clear()
        assert rec.spans == []
        assert rec.dropped_spans == 0

    def test_recording_tracer_counts_evictions(self):
        t = RecordingTracer(maxlen=2)
        for i in range(5):
            t.record(float(i), 0, "k", "")
        assert t.evicted == 3
        assert len(t.records) == 2
        t.clear()
        assert t.evicted == 0


def _traced_am_run():
    """A 2-node ping with spans: real send/deliver records for the flows."""
    rec = SpanRecorder()
    cluster = Cluster(2, tracer=rec)
    eps = install_am(cluster)
    eps[1].register_handler("ping", lambda *a: iter(()))

    def main(node):
        sid = rec.begin(node.sim.now, 0, "app.ping")
        yield from node.service("am").send_short(1, "ping", nbytes=12)
        rec.end(sid, node.sim.now)

    def server(node):
        yield from node.service("am").wait_and_poll()

    cluster.launch(1, server(cluster.nodes[1]), daemon=True)
    cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    return rec


class TestPerfettoExport:
    def test_event_schema(self):
        events = chrome_trace_events(_traced_am_run())
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert "ts" in ev

    def test_metadata_names_every_node(self):
        events = chrome_trace_events(_traced_am_run())
        meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {m["args"]["name"] for m in meta} == {"node 0", "node 1"}

    def test_spans_emit_matched_async_pairs(self):
        events = chrome_trace_events(_traced_am_run())
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert begins and len(begins) == len(ends)
        assert sorted(e["id"] for e in begins) == sorted(e["id"] for e in ends)
        assert any(e["name"] == "app.ping" for e in begins)
        # am.handle runs on the receiving node
        handle = [e for e in begins if e["name"] == "am.handle"]
        assert handle and all(e["pid"] == 1 for e in handle)

    def test_flow_events_link_send_to_deliver(self):
        events = chrome_trace_events(_traced_am_run())
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts  # the ping produced at least one linked packet
        assert set(starts) == set(finishes)
        for fid, s in starts.items():
            f = finishes[fid]
            assert s["pid"] != f["pid"]  # crosses nodes
            assert s["ts"] <= f["ts"]  # wire time is non-negative

    def test_open_spans_are_skipped(self):
        rec = SpanRecorder()
        rec.begin(0.0, 0, "never-ended")
        events = chrome_trace_events(rec)
        assert not [e for e in events if e["ph"] in ("b", "e")]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_traced_am_run(), tmp_path / "sub" / "t.json")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert "clock" in doc["otherData"]
