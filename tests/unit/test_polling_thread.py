"""Unit tests for the CC++ polling thread's behaviour."""

import pytest

from repro.ccpp import CCppRuntime, WaitMode
from repro.ccpp.polling import polling_loop
from repro.machine.cluster import Cluster
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge


def test_polling_thread_is_daemon_and_never_blocks_shutdown():
    rt = CCppRuntime(Cluster(2))

    def program(ctx):
        yield from ctx.rmi(ctx.rt.manager_ptr(1), "ping")

    rt.launch(0, program)
    rt.run()  # would raise DeadlockError if pollers kept the sim alive
    for thr in rt.polling_threads:
        assert thr.daemon


def test_polling_thread_services_while_main_parked():
    """With the caller parked (normal RMI), only the polling thread can
    service the reply — the mechanism §4 describes."""
    rt = CCppRuntime(Cluster(2))
    out = {}

    def program(ctx):
        out["result"] = yield from ctx.rmi(
            ctx.rt.manager_ptr(1), "ping", wait=WaitMode.PARK
        )

    rt.launch(0, program)
    rt.run()
    assert out["result"] == 0
    # the handoff polling thread -> caller shows up as context switches
    assert rt.cluster.aggregate_counters().get(CounterNames.THREAD_YIELD) >= 1


def test_polling_thread_switches_attributed_to_thread_mgmt():
    """'75-85% of [thread-mgmt] cost is due to context switches, a large
    fraction attributable to the polling thread' — the category exists
    and grows with RMI count."""
    def measure(n_rmis):
        rt = CCppRuntime(Cluster(2))

        def program(ctx):
            for _ in range(n_rmis):
                yield from ctx.rmi(ctx.rt.manager_ptr(1), "ping")

        rt.launch(0, program)
        rt.run()
        return rt.cluster.aggregate_account().get(Category.THREAD_MGMT)

    assert measure(8) > measure(2)


def test_disabling_polling_thread_deadlocks_parked_rmi():
    """Without the polling thread, a parked caller has nobody to service
    its reply — exactly the deadlock §4 says the thread exists to avoid."""
    from repro.errors import DeadlockError

    rt = CCppRuntime(Cluster(2), start_polling=False)

    def server_poller(node):
        # node 1 still needs SOME servicing for the request to execute
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    rt.cluster.launch(1, server_poller(rt.cluster.nodes[1]), daemon=True)

    def program(ctx):
        yield from ctx.rmi(ctx.rt.manager_ptr(1), "ping", wait=WaitMode.PARK)

    rt.launch(0, program)
    with pytest.raises(DeadlockError):
        rt.run()


def test_spin_mode_survives_without_polling_thread():
    """A spin-waiting caller polls for itself, so SPIN mode works even
    with no polling thread — the 0-Word Simple configuration."""
    rt = CCppRuntime(Cluster(2), start_polling=False)

    def server_poller(node):
        ep = node.service("am")
        while True:
            yield from ep.wait_and_poll()

    rt.cluster.launch(1, server_poller(rt.cluster.nodes[1]), daemon=True)
    out = {}

    def program(ctx):
        out["r"] = yield from ctx.rmi(
            ctx.rt.manager_ptr(1), "ping", wait=WaitMode.SPIN
        )

    rt.launch(0, program)
    rt.run()
    assert out["r"] == 0
