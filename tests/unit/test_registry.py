"""Unit: the experiment registry — schemas, parsing, uniform validation."""

import pytest

from repro.experiments import registry
from repro.experiments.registry import (
    ExperimentParamError,
    ExperimentSpec,
    ParamSpec,
)


class TestParamSpec:
    def test_scalar_parse(self):
        assert ParamSpec("n", "int", 1).parse("42") == 42
        assert ParamSpec("x", "float", 0.0).parse("0.25") == 0.25
        assert ParamSpec("s", "str", "").parse("bulk") == "bulk"

    @pytest.mark.parametrize("text,value", [
        ("true", True), ("1", True), ("yes", True), ("on", True),
        ("false", False), ("0", False), ("no", False), ("off", False),
    ])
    def test_bool_parse(self, text, value):
        assert ParamSpec("q", "bool", True).parse(text) is value

    def test_bool_parse_rejects_garbage(self):
        with pytest.raises(ExperimentParamError, match="q"):
            ParamSpec("q", "bool", True).parse("maybe")

    def test_list_parse_is_comma_separated_tuple(self):
        assert ParamSpec("drops", "floats", ()).parse("0.0,0.01,0.1") == (0.0, 0.01, 0.1)
        assert ParamSpec("seeds", "ints", ()).parse("1,2") == (1, 2)
        assert ParamSpec("names", "strs", ()).parse("a,b") == ("a", "b")

    def test_parse_type_error_names_the_parameter(self):
        with pytest.raises(ExperimentParamError, match="'iters'"):
            ParamSpec("iters", "int", 1).parse("ten")

    def test_parse_axis_wraps_list_kinds_per_point(self):
        p = ParamSpec("drops", "floats", ())
        assert p.parse_axis("0.0,0.1") == [(0.0,), (0.1,)]
        assert ParamSpec("steps", "int", 1).parse_axis("1,2") == [1, 2]

    def test_parse_axis_rejects_empty(self):
        with pytest.raises(ExperimentParamError, match="empty"):
            ParamSpec("drops", "floats", ()).parse_axis("")

    def test_choices_check(self):
        p = ParamSpec("version", "str", "bulk", choices=("base", "bulk"))
        assert p.check("base") == "base"
        with pytest.raises(ExperimentParamError, match="ghost"):
            p.check("ghost")

    def test_choices_check_elements_of_list_kinds(self):
        p = ParamSpec("versions", "strs", (), choices=("base", "ghost"))
        assert p.check(("base",)) == ("base",)
        with pytest.raises(ExperimentParamError, match="'bulk'"):
            p.check(("base", "bulk"))

    def test_check_normalizes_lists_to_tuples(self):
        assert ParamSpec("sizes", "ints", ()).check([20, 200]) == (20, 200)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ParamSpec("x", "complex", None)


class TestBuiltinRegistry:
    def test_every_artifact_registered(self):
        assert len(registry.ARTIFACT_NAMES) == 14
        for name in registry.ARTIFACT_NAMES:
            spec = registry.get(name)
            assert spec.name == name
            assert callable(spec.run_fn())
            assert isinstance(spec.result_class(), type)

    def test_specs_in_canonical_order(self):
        names = [s.name for s in registry.specs()][: len(registry.ARTIFACT_NAMES)]
        assert tuple(names) == registry.ARTIFACT_NAMES

    def test_unknown_artifact(self):
        with pytest.raises(KeyError, match="figure7"):
            registry.get("figure7")

    def test_unknown_param_fails_uniformly_for_every_spec(self):
        """The old CLI special-cased table4's --scenario; now every spec
        rejects a foreign parameter the same way."""
        for spec in registry.specs():
            with pytest.raises(ExperimentParamError, match="no parameter"):
                spec.validate({"definitely_not_a_param": 1})

    def test_validate_merges_defaults(self):
        spec = registry.get("faults")
        params = spec.validate({"iters": 5})
        assert params["iters"] == 5
        assert params["drops"] == (0.0, 0.01, 0.10)
        assert params["seeds"] == (1, 2)

    def test_table4_scenario_validator(self):
        spec = registry.get("table4")
        assert spec.validate({"scenarios": ("0-Word", "am-rtt")})["scenarios"] == (
            "0-Word", "am-rtt",
        )
        with pytest.raises(ExperimentParamError, match="unknown scenario"):
            spec.validate({"scenarios": ("7-Word",)})

    def test_figure5_versions_choices(self):
        with pytest.raises(ExperimentParamError, match="'warp'"):
            registry.get("figure5").validate({"versions": ("warp",)})

    def test_trace_not_cacheable(self):
        assert registry.get("trace").cacheable is False
        assert registry.get("table4").cacheable is True

    def test_nexus_file_stem(self):
        assert registry.get("nexus").file_stem == "nexus_compare"

    def test_spec_run_validates_then_runs(self):
        result = registry.get("scaling").run(sizes=(20,))
        assert len(result.points) == 1 and result.points[0].words == 20
        with pytest.raises(ExperimentParamError):
            registry.get("scaling").run(bogus=1)

    def test_register_adhoc_spec(self):
        spec = ExperimentSpec(
            name="adhoc-test", title="t", module="repro.experiments.table1",
            result_type="Table1Result",
        )
        registry.register(spec)
        try:
            assert registry.get("adhoc-test") is spec
            assert spec in registry.specs()
        finally:
            registry._REGISTRY.pop("adhoc-test")
