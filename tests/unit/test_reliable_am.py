"""Unit tests for the reliable AM delivery sublayer.

The contract: under any FaultPlan that eventually lets traffic through,
every message is handled exactly once, in per-channel order, and the run
is deterministic from the seed.  The price (acks, retransmissions,
duplicate suppression) is accounted under NET and visible in counters.
"""

import pytest

from repro.am import RetryPolicy, install_am
from repro.errors import RetryExhaustedError, SimulationError
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.sim.account import Category, CounterNames


def _poll_server(node):
    ep = node.service("am")
    while True:
        yield from ep.wait_and_poll()


def _run_stream(faults, *, n_msgs=40, reliable=True, retry=None, seed=0):
    """One sender streams numbered messages to a polling receiver."""
    cluster = Cluster(2, faults=faults)
    eps = install_am(cluster, reliable=reliable, retry=retry)
    got = []

    def h(ep, src, frame):
        got.append(frame.args[0])
        return
        yield

    eps[1].register_handler("h", h)

    def sender(node):
        ep = node.service("am")
        for i in range(n_msgs):
            yield from ep.send_short(1, "h", args=(i,), nbytes=16)

    cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
    cluster.launch(0, sender(cluster.nodes[0]))
    cluster.run()
    return cluster, got


class TestExactlyOnceInOrder:
    def test_under_drops(self):
        plan = FaultPlan(seed=3).drop("am.", rate=0.25)
        cluster, got = _run_stream(plan)
        assert got == list(range(40))
        counters = cluster.aggregate_counters()
        assert counters.get(CounterNames.PKT_RETRANSMIT) > 0
        assert counters.get(CounterNames.PKT_ACK) > 0

    def test_under_duplicates(self):
        plan = FaultPlan(seed=4).duplicate("am.", rate=0.5)
        cluster, got = _run_stream(plan)
        assert got == list(range(40))
        assert cluster.aggregate_counters().get(CounterNames.PKT_DUP_SUPPRESSED) > 0

    def test_under_reordering_delays(self):
        # enough extra latency to leapfrog several successors
        plan = FaultPlan(seed=5).delay("am.short", rate=0.3, delay_us=300.0, jitter_us=100.0)
        _, got = _run_stream(plan)
        assert got == list(range(40))

    def test_under_everything_at_once(self):
        plan = (
            FaultPlan(seed=6)
            .drop("am.", rate=0.15)
            .duplicate("am.", rate=0.15)
            .delay("am.", rate=0.15, delay_us=250.0, jitter_us=50.0)
        )
        _, got = _run_stream(plan)
        assert got == list(range(40))

    def test_loopback_channel_is_reliable_too(self):
        cluster = Cluster(1, faults=FaultPlan(seed=9).drop("am.short", rate=0.3))
        eps = install_am(cluster, reliable=True)
        got = []

        def h(ep, src, frame):
            got.append(frame.args[0])
            return
            yield

        eps[0].register_handler("h", h)

        def body(node):
            ep = node.service("am")
            for i in range(10):
                yield from ep.send_short(0, "h", args=(i,), nbytes=16)
            yield from ep.poll_until(lambda: len(got) >= 10)

        cluster.launch(0, body(cluster.nodes[0]))
        cluster.run()
        assert got == list(range(10))


class TestDeterminism:
    def test_same_seed_reproduces_the_run(self):
        def once():
            plan = FaultPlan(seed=11).drop("am.", rate=0.2).duplicate("am.", rate=0.1)
            cluster, got = _run_stream(plan)
            counters = cluster.aggregate_counters()
            return (
                cluster.sim.now,
                got,
                cluster.network.packets_sent,
                counters.get(CounterNames.PKT_RETRANSMIT),
                counters.get(CounterNames.PKT_ACK),
            )

        assert once() == once()

    def test_different_seed_different_run(self):
        def once(seed):
            plan = FaultPlan(seed=seed).drop("am.", rate=0.2)
            cluster, _ = _run_stream(plan)
            return (cluster.sim.now, cluster.network.packets_dropped)

        assert once(1) != once(2)

    def test_empty_plan_matches_no_plan(self):
        c_none, got_none = _run_stream(None, reliable=False)
        c_empty, got_empty = _run_stream(FaultPlan(), reliable=False)
        assert got_none == got_empty
        assert c_none.sim.now == c_empty.sim.now
        assert c_none.network.packets_sent == c_empty.network.packets_sent


class TestCostAccounting:
    def test_reliability_overhead_lands_in_net(self):
        clean, _ = _run_stream(None, reliable=False)
        reliable, _ = _run_stream(None, reliable=True)
        # same messages delivered either way
        assert (
            reliable.aggregate_counters().get(CounterNames.MSG_SHORT)
            == clean.aggregate_counters().get(CounterNames.MSG_SHORT)
        )
        # but the acks cost NET time and extra packets
        assert reliable.aggregate_account().get(Category.NET) > clean.aggregate_account().get(
            Category.NET
        )
        assert reliable.network.packets_sent > clean.network.packets_sent
        assert reliable.aggregate_counters().get(CounterNames.PKT_ACK) > 0

    def test_retransmissions_charge_net(self):
        plan = FaultPlan(seed=13).drop("am.", rate=0.3)
        faulty, _ = _run_stream(plan)
        clean, _ = _run_stream(None, reliable=True)
        assert faulty.aggregate_account().get(Category.NET) > clean.aggregate_account().get(
            Category.NET
        )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(timeout_us=0.0).validate()
        with pytest.raises(SimulationError):
            RetryPolicy(backoff=0.5).validate()
        with pytest.raises(SimulationError):
            RetryPolicy(max_timeout_us=1.0, timeout_us=10.0).validate()
        with pytest.raises(SimulationError):
            RetryPolicy(max_retries=-1).validate()

    def test_exhaustion_raises_with_channel_info(self):
        cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        eps = install_am(
            cluster,
            reliable=True,
            retry=RetryPolicy(timeout_us=50.0, backoff=2.0, max_timeout_us=200.0, max_retries=3),
        )
        eps[1].register_handler("h", lambda *a: iter(()))

        def sender(node):
            yield from node.service("am").send_short(1, "h", nbytes=16)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        with pytest.raises(RetryExhaustedError) as excinfo:
            cluster.run()
        err = excinfo.value
        assert err.src == 0 and err.dst == 1
        assert err.seq == 0 and err.retries == 3
        # structured context: what was stuck, how hard we tried, how long
        assert err.kind == "am.short"
        assert err.attempts == 4  # original send + 3 retransmissions
        # rto schedule 50, 100, 200, then one last capped 200 us wait
        # before the give-up verdict: 550 us stalled in total
        assert err.elapsed_us == pytest.approx(550.0)

    def test_backoff_spaces_out_retransmissions(self):
        cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        install_am(
            cluster,
            reliable=True,
            retry=RetryPolicy(timeout_us=100.0, backoff=2.0, max_timeout_us=1000.0, max_retries=3),
        )

        def sender(node):
            yield from node.service("am").send_short(1, "h", nbytes=16)

        cluster.launch(0, sender(cluster.nodes[0]))
        with pytest.raises(RetryExhaustedError):
            cluster.run()
        # send ~t0, retx at +100, +200, +400, give up at +800: >= 700 total
        assert cluster.sim.now >= 700.0


class TestInstallGuards:
    def test_double_install_raises(self):
        from repro.errors import RuntimeStateError

        cluster = Cluster(2)
        install_am(cluster)
        with pytest.raises(RuntimeStateError, match="messaging layer"):
            install_am(cluster)
