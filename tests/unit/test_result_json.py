"""Unit: the shared to_json/from_json round-trip contract.

Every result dataclass must survive ``from_json(json.loads(json.dumps(
to_json())))`` with equality — including tuple- and float-keyed maps,
which plain JSON objects cannot represent.  Instances here are built by
hand (no simulations), so this covers the serialization layer alone;
the integration suite round-trips real runs through the cache.
"""

import json

import pytest

from repro.experiments import serde
from repro.experiments.ablations import AblationResult
from repro.experiments.breakdown import BreakdownRow
from repro.experiments.faults import FaultAblationResult
from repro.experiments.figure5 import Figure5Result
from repro.experiments.figure6 import Figure6Result
from repro.experiments.microbench import MicroRow
from repro.experiments.nexus_compare import NexusCompareResult
from repro.experiments.obs_metrics import MetricsReport
from repro.experiments.scaling import ScalingPoint, ScalingResult
from repro.experiments.scorecard import Check, Scorecard
from repro.experiments.table1 import CodeSize, Table1Result
from repro.experiments.table4 import Table4Result


def roundtrip(result):
    cls = type(result)
    payload = json.loads(json.dumps(result.to_json()))
    back = cls.from_json(payload)
    assert back == result
    return back


def _micro(name="0-Word", total=76.2):
    return MicroRow(name, total, 54.0, 10.0, 8.0, 4.2, 1.0, 0.0, 17.0)


def _bar(label="em3d-base 100%", lang="ccpp"):
    return BreakdownRow(
        label=label, language=lang, elapsed_us=123.5,
        breakdown={"cpu": 10.0, "net": 80.0, "idle": 5.0, "runtime": 28.5},
        normalized=1.8,
    )


class TestSerdeHelpers:
    def test_dump_load_map_scalar_keys(self):
        d = {0.01: 1.0, 0.1: 2.0}
        pairs = json.loads(json.dumps(serde.dump_map(d)))
        assert serde.load_map(pairs) == d
        assert all(isinstance(k, float) for k in serde.load_map(pairs))

    def test_dump_load_map_tuple_keys(self):
        d = {("base", 0.1, "ccpp"): 1.5, ("ghost", 1.0, "splitc"): 1.0}
        pairs = json.loads(json.dumps(serde.dump_map(d)))
        assert serde.load_map(pairs) == d

    def test_map_preserves_insertion_order(self):
        d = {"b": 1, "a": 2}
        assert list(serde.load_map(serde.dump_map(d))) == ["b", "a"]

    def test_canonical_json_normalizes_tuples_and_sorts(self):
        a = serde.canonical_json({"b": (1, 2), "a": 1})
        b = serde.canonical_json({"a": 1, "b": [1, 2]})
        assert a == b

    def test_load_fields_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fields"):
            MicroRow.from_json({**_micro().to_json(), "extra": 1})


class TestRoundTrips:
    def test_micro_row(self):
        roundtrip(_micro())

    def test_breakdown_row(self):
        roundtrip(_bar())

    def test_table4(self):
        r = Table4Result(
            cc={"0-Word": _micro()}, sc={"GP 2-Word R/W": _micro("GP 2-Word R/W", 56.8)},
            am_rtt_us=54.4, mpl_rtt_us=None,
        )
        assert roundtrip(r).render() == r.render()

    def test_figure5_tuple_and_float_keys(self):
        r = Figure5Result(
            rows={("base", 0.1, "ccpp"): _bar(), ("base", 0.1, "splitc"): _bar(lang="splitc")},
            per_edge_us={("base", 0.1, "ccpp"): 2.5, ("base", 0.1, "splitc"): 1.25},
        )
        back = roundtrip(r)
        assert back.ratio("base", 0.1) == pytest.approx(2.0)
        assert back.render() == r.render()

    def test_figure6(self):
        r = Figure6Result(rows={("lu 128", "splitc"): _bar("lu 128", "splitc"),
                                ("lu 128", "ccpp"): _bar("lu 128", "ccpp")})
        assert roundtrip(r).render() == r.render()

    def test_nexus(self):
        r = NexusCompareResult(tham_us={"lu": 100.0}, nexus_us={"lu": 550.0})
        assert roundtrip(r).speedup("lu") == pytest.approx(5.5)

    def test_ablations_float_keyed_sweep(self):
        r = AblationResult(
            rows=[("stub caching", "0-Word RMI", 76.2, 110.4)],
            contended=5, uncontended=95,
            interrupt_sweep={5.0: 70.1, 50.0: 90.2},
            polling_baseline_us=76.2,
        )
        back = roundtrip(r)
        assert back.rows[0] == ("stub caching", "0-Word RMI", 76.2, 110.4)
        assert back.contentionless_fraction == pytest.approx(0.95)

    def test_faults_nested_float_int_keys(self):
        cell = {"rtt_us": 60.0, "retransmits": 3, "acks": 12}
        r = FaultAblationResult(
            rtt_cells={0.0: {1: dict(cell)}, 0.1: {1: dict(cell), 2: dict(cell)}},
            em3d_cells={0.0: {1: {"elapsed_us": 1.0, "retransmits": 0, "net_us": 0.5}},
                        0.1: {1: {"elapsed_us": 2.0, "retransmits": 5, "net_us": 1.5},
                              2: {"elapsed_us": 2.1, "retransmits": 4, "net_us": 1.4}}},
            clean_rtt_us=54.4, clean_em3d_us=1234.0,
        )
        back = roundtrip(r)
        assert list(back.rtt_cells) == [0.0, 0.1]
        assert back.rtt_cells[0.1][2]["acks"] == 12

    def test_scaling(self):
        r = ScalingResult(points=[ScalingPoint(20, 74.8, 206.8), ScalingPoint(200, 118.0, 638.8)])
        assert roundtrip(r).ratios() == pytest.approx(r.ratios())

    def test_scorecard(self):
        r = Scorecard(checks=[Check("AM RTT", "55 us", "54.40", True),
                              Check("MPL RTT", "88 us", "91.00", False)])
        back = roundtrip(r)
        assert back.passed == 1 and back.all_ok is False

    def test_table1(self):
        r = Table1Result(sizes={"CC++ runtime": CodeSize(100, 80, 7)})
        assert roundtrip(r).render() == r.render()

    def test_metrics_report(self):
        r = MetricsReport(
            sections={"am rtt clean": {"am.rtt_us": {
                "count": 50, "mean": 54.4, "p50": 54.0, "p90": 55.0,
                "p99": 56.0, "min": 53.0, "max": 57.0}}},
            gauges={"em3d.elapsed_us": 123.0},
        )
        back = roundtrip(r)
        assert back.csv() == r.csv()
