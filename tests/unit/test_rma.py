"""The one-sided RMA layer: windows, put/get/accumulate, completions.

The layer's contract (mirroring pMR over the AM fabric):

* windows are registered, named arrays; remote access never runs
  application code on the target CPU;
* every operation exposes *two* completion events — local (source
  buffer reusable, synchronous at issue in this simulator) and remote
  (data visible, signalled by the NIC's ``rma.done``);
* ``accumulate`` is an atomic ``+=``;
* notified puts bump a cumulative per-window count waiters block on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GlobalPointerError, RuntimeStateError, SimulationError
from repro.machine.cluster import Cluster
from repro.rma import install_rma, run_injection
from repro.sim.account import CounterNames


def _run_pair(main_body, *, size: int = 16):
    """2-node harness: node 1 registers ``win`` and polls as a pure RMA
    target (daemon); node 0 runs ``main_body(proc)``.  Returns the
    cluster and the target's window array."""
    cluster = Cluster(2)
    rt = install_rma(cluster)
    box: dict = {}

    def target(proc):
        box["win"] = yield from proc.register("win", size)
        while True:
            yield from proc.ep.wait_and_poll()

    cluster.launch(1, target(rt.process(1)), daemon=True)
    cluster.launch(0, main_body(rt.process(0)))
    cluster.run()
    return cluster, box["win"].array


class TestWindows:
    def test_register_allocates_and_publishes(self):
        cluster = Cluster(1)
        rt = install_rma(cluster)

        def prog(proc):
            win = yield from proc.register("w", 8)
            assert len(win) == 8
            assert proc.window("w") is win
            assert (win.array == 0.0).all()

        cluster.launch(0, prog(rt.process(0)))
        cluster.run()
        assert cluster.nodes[0].counters.get(CounterNames.RMA_WINDOWS) == 1

    def test_register_pins_caller_supplied_array(self):
        cluster = Cluster(1)
        rt = install_rma(cluster)
        arr = np.arange(4.0)

        def prog(proc):
            win = yield from proc.register("w", 4, array=arr)
            assert win.array is arr

        cluster.launch(0, prog(rt.process(0)))
        cluster.run()

    def test_duplicate_and_mismatched_registration_rejected(self):
        cluster = Cluster(1)
        rt = install_rma(cluster)

        def prog(proc):
            yield from proc.register("w", 4)
            with pytest.raises(RuntimeStateError, match="already registered"):
                yield from proc.register("w", 4)
            with pytest.raises(RuntimeStateError, match="declared size"):
                yield from proc.register("w2", 8, array=np.zeros(4))

        cluster.launch(0, prog(rt.process(0)))
        cluster.run()

    def test_unknown_window_lookup(self):
        rt = install_rma(Cluster(1))
        with pytest.raises(RuntimeStateError, match="no RMA window"):
            rt.process(0).window("nope")


class TestOneSided:
    def test_put_get_accumulate_roundtrip(self):
        got: dict = {}

        def main(proc):
            h = yield from proc.put(1, "win", 0, [1.0, 2.0, 3.0])
            yield from proc.wait_remote(h)
            h = yield from proc.accumulate(1, "win", 1, [10.0, 10.0])
            yield from proc.wait_remote(h)
            got["block"] = (yield from proc.get(1, "win", 0, 4))

        _, arr = _run_pair(main)
        assert list(got["block"]) == [1.0, 12.0, 13.0, 0.0]
        assert list(arr[:4]) == [1.0, 12.0, 13.0, 0.0]

    def test_bulk_paths(self):
        """> 4 doubles rides the bulk frame both directions."""
        n = 12
        got: dict = {}

        def main(proc):
            h = yield from proc.put(1, "win", 2, [float(i) for i in range(n)])
            yield from proc.wait_remote(h)
            got["block"] = (yield from proc.get(1, "win", 2, n))

        cluster, arr = _run_pair(main)
        assert list(got["block"]) == [float(i) for i in range(n)]
        assert list(arr[2 : 2 + n]) == [float(i) for i in range(n)]
        assert cluster.aggregate_counters().get(CounterNames.MSG_BULK) >= 2

    def test_local_completion_precedes_remote(self):
        """The pMR distinction: the put generator resumes with the source
        buffer reusable (local) while the data is still in flight."""
        seen: dict = {}

        def main(proc):
            h = yield from proc.put(1, "win", 0, [5.0])
            seen["local"] = h.local_done
            seen["remote_early"] = h.remote_done
            yield from proc.wait_remote(h)
            seen["remote_late"] = h.remote_done

        _run_pair(main)
        assert seen == {"local": True, "remote_early": False, "remote_late": True}

    def test_flush_drains_all_inflight(self):
        def main(proc):
            handles = []
            for i in range(6):
                h = yield from proc.put(1, "win", i, [float(i)])
                handles.append(h)
            yield from proc.flush()
            assert all(h.remote_done for h in handles)

        _, arr = _run_pair(main)
        assert list(arr[:6]) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_notify_counts_are_cumulative(self):
        counts: dict = {}

        def main(proc):
            for i in range(3):
                h = yield from proc.put(1, "win", 0, [1.0], notify=True)
                yield from proc.wait_remote(h)
            # un-notified put must not bump the count
            h = yield from proc.put(1, "win", 1, [1.0])
            yield from proc.wait_remote(h)
            counts["local_view"] = proc.notify_count("win")

        cluster, _ = _run_pair(main)
        assert counts["local_view"] == 0  # counts live on the *target*
        assert cluster.nodes[1].counters.get(CounterNames.RMA_NOTIFY) == 3

    def test_wait_notify_blocks_until_count(self):
        woke: dict = {}
        cluster = Cluster(2)
        rt = install_rma(cluster)

        def target(proc):
            yield from proc.register("win", 4)
            yield from proc.wait_notify("win", 2)
            # the wait may only release once both notified puts landed
            woke["count"] = proc.notify_count("win")
            woke["at"] = proc.node.sim.now

        landed: list = []

        def main(proc):
            for i in range(2):
                h = yield from proc.put(1, "win", i, [float(i + 1)], notify=True)
                yield from proc.wait_remote(h)
                landed.append(proc.node.sim.now)

        cluster.launch(1, target(rt.process(1)))
        cluster.launch(0, main(rt.process(0)))
        cluster.run()
        assert woke["count"] == 2
        # woke strictly after the first put's remote completion
        assert woke["at"] > landed[0]

    def test_operation_counters(self):
        def main(proc):
            yield from proc.put(1, "win", 0, [1.0])
            yield from proc.accumulate(1, "win", 0, [1.0])
            yield from proc.get(1, "win", 0, 1)
            yield from proc.flush()

        cluster, _ = _run_pair(main)
        totals = cluster.aggregate_counters()
        assert totals.get(CounterNames.RMA_PUT) == 1
        assert totals.get(CounterNames.RMA_ACC) == 1
        assert totals.get(CounterNames.RMA_GET) == 1


class TestErrorPaths:
    def _expect_cause(self, main, exc_type):
        cluster = Cluster(2)
        rt = install_rma(cluster)

        def target(proc):
            yield from proc.register("win", 4)
            while True:
                yield from proc.ep.wait_and_poll()

        cluster.launch(1, target(rt.process(1)), daemon=True)
        cluster.launch(0, main(rt.process(0)))
        with pytest.raises(SimulationError) as info:
            cluster.run()
        cause = info.value
        while cause.__cause__ is not None:
            cause = cause.__cause__
        assert isinstance(cause, exc_type)

    def test_put_to_unregistered_window(self):
        def main(proc):
            h = yield from proc.put(1, "nope", 0, [1.0])
            yield from proc.wait_remote(h)

        self._expect_cause(main, RuntimeStateError)

    def test_out_of_bounds_put(self):
        def main(proc):
            h = yield from proc.put(1, "win", 3, [1.0, 2.0])
            yield from proc.wait_remote(h)

        self._expect_cause(main, GlobalPointerError)

    def test_out_of_bounds_get(self):
        def main(proc):
            yield from proc.get(1, "win", 0, 5)

        self._expect_cause(main, GlobalPointerError)


class TestInjection:
    def test_invalid_configurations(self):
        with pytest.raises(RuntimeStateError, match="thread"):
            run_injection(0)
        with pytest.raises(RuntimeStateError, match="msgs"):
            run_injection(8, msgs=4)

    def test_rate_scales_then_saturates(self):
        """More sender uthreads overlap completion waits — the measured
        rate must climb with the thread count (the NIC serializes the
        sends, so it cannot climb linearly forever)."""
        rates = [run_injection(t, msgs=32)["rate_per_ms"] for t in (1, 2, 4)]
        assert rates[0] < rates[1] < rates[2]
        # deterministic: same config, same virtual-time rate
        assert run_injection(2, msgs=32) == run_injection(2, msgs=32)
