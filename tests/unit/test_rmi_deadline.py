"""Unit tests for RMI deadlines, cancellation and unreachable-peer aborts."""

import pytest

from repro.am import RetryPolicy
from repro.ccpp import (
    CCppRuntime,
    ObjectGlobalPtr,
    ProcessorObject,
    WaitMode,
    processor_class,
    remote,
)
from repro.errors import DeadlineExceededError, NodeUnreachableError, SimulationError
from repro.ft import install_detector
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultPlan
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge


@processor_class
class Echo(ProcessorObject):
    @remote
    def ping(self, x=0):
        return x + 1

    @remote(threaded=True)
    def slow_ping(self):
        yield Charge(5_000.0, Category.CPU)
        return 1


def _rt(n=2, *, faults=None, reliable=False, retry=None):
    return CCppRuntime(Cluster(n, faults=faults), reliable=reliable, retry=retry)


def _run(rt, program, *, watchdog_us=None):
    thread = rt.launch(0, program)
    if watchdog_us is None:
        rt.run()
    else:
        rt.cluster.run(watchdog_us=watchdog_us)
    return thread.result


class TestDeadlines:
    def test_deadline_must_be_positive(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            with pytest.raises(SimulationError):
                yield from ctx.rmi(gp, "ping", deadline_us=0.0)
            return "ok"

        assert _run(rt, program) == "ok"

    def test_generous_deadline_changes_nothing(self):
        rt = _rt()

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            a = yield from ctx.rmi(gp, "ping", 1)
            b = yield from ctx.rmi(gp, "ping", 1, deadline_us=1e9)
            return a, b

        assert _run(rt, program) == (2, 2)
        counters = rt.cluster.aggregate_counters().snapshot()
        assert counters.get(CounterNames.RMI_DEADLINE, 0) == 0

    @pytest.mark.parametrize("wait", [WaitMode.PARK, WaitMode.SPIN])
    def test_lost_request_raises_deadline_exceeded(self, wait):
        # every data packet to node 1 is eaten: the request never lands
        # and only the deadline frees the caller (the pointer is forged —
        # the request is dropped before dispatch would ever look it up)
        rt = _rt(faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        gp = ObjectGlobalPtr(node=1, obj_id=0, cls="Echo")

        def program(ctx):
            try:
                yield from ctx.rmi(gp, "ping", wait=wait, deadline_us=500.0)
            except DeadlineExceededError as exc:
                return exc
            return None

        err = _run(rt, program, watchdog_us=True)
        assert isinstance(err, DeadlineExceededError)
        assert err.node == 1
        assert err.op == "rmi"
        assert err.deadline_us == 500.0
        counters = rt.cluster.aggregate_counters().snapshot()
        assert counters.get(CounterNames.RMI_DEADLINE, 0) == 1

    def test_late_reply_is_dropped_not_delivered(self):
        """A reply that arrives after the deadline fired hits a retired
        slot: it is counted (RMI_LATE_REPLY) and discarded, and the next
        call on the same node still works."""
        # 400 us of extra latency each way: round trip > the 500 us
        # deadline, but the reply does eventually land
        rt = _rt(faults=FaultPlan().delay("am.", rate=1.0, delay_us=400.0))

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            try:
                yield from ctx.rmi(gp, "ping", 1, deadline_us=500.0)
            except DeadlineExceededError:
                pass
            # second call, no deadline: proves the slot table recovered
            # and the late first reply did not corrupt it
            return (yield from ctx.rmi(gp, "ping", 10))

        assert _run(rt, program) == 11
        counters = rt.cluster.aggregate_counters().snapshot()
        assert counters.get(CounterNames.RMI_LATE_REPLY, 0) == 1
        assert counters.get(CounterNames.RMI_DEADLINE, 0) == 1

    def test_future_surfaces_deadline_error_on_get(self):
        rt = _rt(faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        gp = ObjectGlobalPtr(node=1, obj_id=0, cls="Echo")

        def program(ctx):
            fut = yield from ctx.rmi_future(gp, "ping", deadline_us=300.0)
            try:
                yield from fut.get()
            except DeadlineExceededError as exc:
                return exc
            return None

        err = _run(rt, program, watchdog_us=True)
        assert isinstance(err, DeadlineExceededError)
        assert err.deadline_us == 300.0


class TestUnreachablePeers:
    def _rt_with_detector(self, faults=None):
        rt = _rt(
            faults=faults,
            reliable=True,
            retry=RetryPolicy(timeout_us=100.0, backoff=2.0,
                              max_timeout_us=800.0, max_retries=50),
        )
        fd = install_detector(rt.cluster, interval_us=100.0, phi=4.0)
        rt.engine.attach_failure_detector(fd)
        return rt, fd

    def test_fail_fast_on_known_dead_peer(self):
        rt, fd = self._rt_with_detector()

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            fd.memberships[0].declare_dead(1)
            try:
                yield from ctx.rmi(gp, "ping")
            except NodeUnreachableError as exc:
                return exc
            return None

        err = _run(rt, program)
        assert isinstance(err, NodeUnreachableError)
        assert err.src == 0 and err.dst == 1

    def test_async_rmi_also_fails_fast(self):
        rt, fd = self._rt_with_detector()

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            fd.memberships[0].declare_dead(1)
            with pytest.raises(NodeUnreachableError):
                yield from ctx.rmi_async(gp, "ping")
            return "ok"

        assert _run(rt, program) == "ok"

    def test_midflight_death_aborts_the_wait(self):
        """Node 1 goes dark while a slow call is outstanding: the
        detector's declaration expires the slot, and the caller gets
        NodeUnreachableError instead of waiting forever on the reply."""
        rt, fd = self._rt_with_detector(
            faults=FaultPlan().fail_node(1, at=300.0)
        )

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            try:
                # the method computes 5 ms remotely; the fabric loses
                # node 1 long before the reply could be sent
                yield from ctx.rmi(gp, "slow_ping")
            except NodeUnreachableError as exc:
                return exc
            return None

        err = _run(rt, program, watchdog_us=True)
        assert isinstance(err, NodeUnreachableError)
        assert err.src == 0 and err.dst == 1
        assert fd.is_dead(0, 1)

    def test_detection_beats_a_longer_deadline(self):
        """Both bounds armed: the membership abort lands before a very
        long deadline, and the error reflects what actually happened."""
        rt, fd = self._rt_with_detector(
            faults=FaultPlan().fail_node(1, at=300.0)
        )

        def program(ctx):
            gp = yield from ctx.create(1, Echo)
            try:
                yield from ctx.rmi(gp, "slow_ping", deadline_us=1e9)
            except NodeUnreachableError as exc:
                return exc
            return None

        err = _run(rt, program, watchdog_us=True)
        assert isinstance(err, NodeUnreachableError)
