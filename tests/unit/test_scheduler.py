"""Unit tests for the cooperative scheduler and thread services."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine.cluster import Cluster
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge, Park, Switch
from repro.threads.api import join, spawn, yield_now
from repro.threads.thread import ThreadState

from tests.helpers import run_bodies


def test_charge_advances_clock_and_accounts():
    def body(node):
        yield Charge(25.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    assert cluster.sim.now == 25.0
    assert cluster.nodes[0].account.get(Category.CPU) == 25.0


def test_zero_charge_costs_nothing():
    def body(node):
        for _ in range(10):
            yield Charge(0.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    assert cluster.sim.now == 0.0


def test_spawn_charges_creation_cost():
    def child(node):
        yield Charge(1.0, Category.CPU)

    def main(node):
        yield from spawn(node, child(node), "child")

    cluster = Cluster(1)
    cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    create = cluster.costs.threads.create
    assert cluster.nodes[0].account.get(Category.THREAD_MGMT) == create
    assert cluster.nodes[0].counters.get(CounterNames.THREAD_CREATE) == 1


def test_join_returns_child_result():
    def child(node):
        yield Charge(5.0, Category.CPU)
        return "payload"

    def main(node):
        t = yield from spawn(node, child(node), "child")
        return (yield from join(node, t))

    cluster = Cluster(1)
    main_thread = cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    assert main_thread.result == "payload"


def test_join_already_finished_thread():
    def child(node):
        return 42
        yield

    def main(node):
        t = yield from spawn(node, child(node), "child")
        yield Charge(50.0, Category.CPU)  # child certainly done by now
        return (yield from join(node, t))

    cluster = Cluster(1)
    thread = cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    assert thread.result == 42


def test_switch_charges_context_switch_and_counts_yield():
    def body(node):
        yield Switch()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    cs = cluster.costs.threads.context_switch
    assert cluster.nodes[0].account.get(Category.THREAD_MGMT) == cs
    assert cluster.nodes[0].counters.get(CounterNames.THREAD_YIELD) == 1


def test_yield_now_interleaves_two_threads():
    order = []

    def body(node, tag):
        for i in range(3):
            order.append((tag, i))
            yield from yield_now(node)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0], "a"))
    cluster.launch(0, body(cluster.nodes[0], "b"))
    cluster.run()
    # round-robin interleave, not serial execution
    assert order[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


def test_nonpreemption_charge_is_atomic():
    """No other thread runs on the node while a charge elapses."""
    trace = []

    def long_runner(node):
        trace.append(("long-start", node.sim.now))
        yield Charge(100.0, Category.CPU)
        trace.append(("long-end", node.sim.now))

    def other(node):
        trace.append(("other", node.sim.now))
        yield Charge(1.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, long_runner(cluster.nodes[0]))
    cluster.launch(0, other(cluster.nodes[0]))
    cluster.run()
    assert trace == [("long-start", 0.0), ("long-end", 100.0), ("other", 100.0)]


def test_park_without_waker_deadlocks():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(DeadlockError, match="blocked non-daemon"):
        cluster.run()


def test_parked_daemon_does_not_deadlock():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]), daemon=True)
    cluster.run()  # drains cleanly


def test_wake_requires_parked_state():
    cluster = Cluster(1)

    def body(node):
        yield Charge(1.0, Category.CPU)

    thread = cluster.launch(0, body(cluster.nodes[0]))
    sched = cluster.nodes[0].scheduler
    with pytest.raises(SimulationError):
        sched.wake(thread)  # it is READY, not PARKED


def test_thread_exception_surfaces_as_simulation_error():
    def body(node):
        yield Charge(1.0, Category.CPU)
        raise RuntimeError("app bug")

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(SimulationError, match="raised"):
        cluster.run()


def test_non_effect_yield_rejected():
    def body(node):
        yield "not an effect"

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(SimulationError):
        cluster.run()


def test_idle_time_accounted_between_work():
    """A node waiting on the network accumulates IDLE charge."""
    from repro.am import install_am

    cluster = Cluster(2)
    eps = install_am(cluster)
    got = []

    def noop(ep, src, frame):
        got.append(src)
        return
        yield

    for ep in eps:
        ep.register_handler("noop", noop)

    def sender(node):
        ep = node.service("am")
        yield Charge(10.0, Category.CPU)
        yield from ep.send_short(1, "noop", nbytes=12)

    def receiver(node):
        ep = node.service("am")
        yield from ep.wait_and_poll()

    cluster.launch(0, sender(cluster.nodes[0]))
    cluster.launch(1, receiver(cluster.nodes[1]))
    cluster.run()
    assert got == [0]
    # node 1 idled from t=0 until the message was deliverable
    assert cluster.nodes[1].account.get(Category.IDLE) > 10.0


def test_states_reach_done():
    def body(node):
        yield Charge(1.0, Category.CPU)

    cluster = Cluster(1)
    t = cluster.launch(0, body(cluster.nodes[0]))
    assert t.state is ThreadState.READY
    cluster.run()
    assert t.state is ThreadState.DONE
    assert not t.alive


def test_join_self_rejected():
    def main(node):
        me = node.scheduler.current
        yield from join(node, me)

    cluster = Cluster(1)
    cluster.launch(0, main(cluster.nodes[0]))
    with pytest.raises(SimulationError):
        cluster.run()


def test_blocked_threads_listed_in_deadlock_error():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]), name="stuck-thread")
    with pytest.raises(DeadlockError) as excinfo:
        cluster.run()
    assert any("stuck-thread" in b for b in excinfo.value.blocked)


# ------------------------------------------------------------------ ChargeRun


def _charge_run_drive(effects):
    """Run one thread yielding ``effects``; return (elapsed, accounts)."""
    from repro.sim.effects import ChargeRun  # noqa: F401 (imported for callers)

    def body(node):
        for e in effects:
            yield e

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    node = cluster.nodes[0]
    return cluster.sim.now, {
        c: node.account.get(c) for c in (Category.CPU, Category.RUNTIME)
    }


def test_charge_run_equals_individual_charges():
    from repro.sim.effects import ChargeRun

    items = (
        Charge(1.0, Category.CPU),
        Charge(3.5, Category.RUNTIME),
        Charge(0.5, Category.CPU),
    )
    assert _charge_run_drive([ChargeRun(*items)]) == _charge_run_drive(list(items))


def test_charge_run_two_items_equals_individual_charges():
    # the scheduler unrolls the two-item shape; parity must still hold
    from repro.sim.effects import ChargeRun

    items = (Charge(1.0, Category.CPU), Charge(3.5, Category.RUNTIME))
    assert _charge_run_drive([ChargeRun(*items)]) == _charge_run_drive(list(items))


def test_charge_run_zero_items_cost_nothing():
    from repro.sim.effects import ChargeRun

    now, acct = _charge_run_drive(
        [ChargeRun(Charge(0.0, Category.CPU), Charge(0.0, Category.RUNTIME))]
    )
    assert now == 0.0
    assert acct[Category.CPU] == 0.0 and acct[Category.RUNTIME] == 0.0


@pytest.mark.parametrize(
    "items",
    [
        (Charge(-1.0, Category.CPU), Charge(1.0, Category.CPU)),
        (Charge(1.0, Category.CPU), Charge(-1.0, Category.CPU)),
        (Charge(1.0, Category.CPU), Charge(1.0, Category.CPU), Charge(-2.0)),
    ],
)
def test_charge_run_rejects_negative_items(items):
    from repro.sim.effects import ChargeRun

    with pytest.raises((ValueError, SimulationError)):
        _charge_run_drive([ChargeRun(*items)])


@pytest.mark.parametrize("interrupt_at", [0.5, 1.5, 4.0, 4.5])
def test_charge_run_interrupted_window_replays_exactly(interrupt_at):
    """A foreign event inside the run's window defeats the collapse; the
    item-by-item replay must interleave exactly like individual charges."""
    from repro.sim.effects import ChargeRun

    def drive(batch: bool):
        order = []
        items = (Charge(1.0, Category.CPU), Charge(3.5, Category.RUNTIME))

        def body(node):
            if batch:
                yield ChargeRun(*items)
            else:
                for c in items:
                    yield c
            order.append(("resumed", node.sim.now))

        cluster = Cluster(1)
        node = cluster.nodes[0]
        cluster.sim.schedule(interrupt_at, lambda: order.append(("evt", cluster.sim.now)))
        cluster.launch(0, body(node))
        cluster.run()
        return order, cluster.sim.now, node.account.get(Category.CPU), node.account.get(
            Category.RUNTIME
        )

    assert drive(True) == drive(False)


# --- voluntary switch delay vs same-instant arrivals


def test_switch_delay_survives_same_instant_arrival():
    """A voluntary Switch pays its full context-switch dispatch delay even
    when a message arrival with no inbox waiters lands at the same
    instant.

    The reference discipline used to schedule a zero-delay kick for that
    arrival; while the kick was queued, ``_dispatch_pending`` silently
    swallowed the Switch's *delayed* dispatch, so the next thread started
    with zero gap despite the switch having charged ``context_switch`` µs
    of THREAD_MGMT — accounting and timeline disagreed.  The kick elision
    removes that accident; this pins the consistent behaviour.
    """
    ran_at = {}

    def switcher(node):
        yield Charge(4.0, Category.CPU)
        yield Switch()
        ran_at["switcher_back"] = node.sim.now

    def other(node):
        ran_at["other"] = node.sim.now
        yield Charge(0.0, Category.CPU)

    cluster = Cluster(1)
    node = cluster.nodes[0]
    cluster.launch(0, switcher(node))
    cluster.launch(0, other(node))
    # lands exactly when switcher's charge ends and it yields Switch;
    # scheduled before the charge resume exists, so it fires first at 4.0
    cluster.sim.schedule(4.0, node.scheduler.on_message_arrival)
    cluster.run()

    switch_us = cluster.costs.threads.context_switch
    assert ran_at["other"] == 4.0 + switch_us
    assert ran_at["switcher_back"] == 4.0 + switch_us
    assert node.account.get(Category.THREAD_MGMT) == switch_us
