"""Unit tests for the cooperative scheduler and thread services."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine.cluster import Cluster
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge, Park, Switch
from repro.threads.api import join, spawn, yield_now
from repro.threads.thread import ThreadState

from tests.helpers import run_bodies


def test_charge_advances_clock_and_accounts():
    def body(node):
        yield Charge(25.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    assert cluster.sim.now == 25.0
    assert cluster.nodes[0].account.get(Category.CPU) == 25.0


def test_zero_charge_costs_nothing():
    def body(node):
        for _ in range(10):
            yield Charge(0.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    assert cluster.sim.now == 0.0


def test_spawn_charges_creation_cost():
    def child(node):
        yield Charge(1.0, Category.CPU)

    def main(node):
        yield from spawn(node, child(node), "child")

    cluster = Cluster(1)
    cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    create = cluster.costs.threads.create
    assert cluster.nodes[0].account.get(Category.THREAD_MGMT) == create
    assert cluster.nodes[0].counters.get(CounterNames.THREAD_CREATE) == 1


def test_join_returns_child_result():
    def child(node):
        yield Charge(5.0, Category.CPU)
        return "payload"

    def main(node):
        t = yield from spawn(node, child(node), "child")
        return (yield from join(node, t))

    cluster = Cluster(1)
    main_thread = cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    assert main_thread.result == "payload"


def test_join_already_finished_thread():
    def child(node):
        return 42
        yield

    def main(node):
        t = yield from spawn(node, child(node), "child")
        yield Charge(50.0, Category.CPU)  # child certainly done by now
        return (yield from join(node, t))

    cluster = Cluster(1)
    thread = cluster.launch(0, main(cluster.nodes[0]))
    cluster.run()
    assert thread.result == 42


def test_switch_charges_context_switch_and_counts_yield():
    def body(node):
        yield Switch()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    cluster.run()
    cs = cluster.costs.threads.context_switch
    assert cluster.nodes[0].account.get(Category.THREAD_MGMT) == cs
    assert cluster.nodes[0].counters.get(CounterNames.THREAD_YIELD) == 1


def test_yield_now_interleaves_two_threads():
    order = []

    def body(node, tag):
        for i in range(3):
            order.append((tag, i))
            yield from yield_now(node)

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0], "a"))
    cluster.launch(0, body(cluster.nodes[0], "b"))
    cluster.run()
    # round-robin interleave, not serial execution
    assert order[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


def test_nonpreemption_charge_is_atomic():
    """No other thread runs on the node while a charge elapses."""
    trace = []

    def long_runner(node):
        trace.append(("long-start", node.sim.now))
        yield Charge(100.0, Category.CPU)
        trace.append(("long-end", node.sim.now))

    def other(node):
        trace.append(("other", node.sim.now))
        yield Charge(1.0, Category.CPU)

    cluster = Cluster(1)
    cluster.launch(0, long_runner(cluster.nodes[0]))
    cluster.launch(0, other(cluster.nodes[0]))
    cluster.run()
    assert trace == [("long-start", 0.0), ("long-end", 100.0), ("other", 100.0)]


def test_park_without_waker_deadlocks():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(DeadlockError, match="blocked non-daemon"):
        cluster.run()


def test_parked_daemon_does_not_deadlock():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]), daemon=True)
    cluster.run()  # drains cleanly


def test_wake_requires_parked_state():
    cluster = Cluster(1)

    def body(node):
        yield Charge(1.0, Category.CPU)

    thread = cluster.launch(0, body(cluster.nodes[0]))
    sched = cluster.nodes[0].scheduler
    with pytest.raises(SimulationError):
        sched.wake(thread)  # it is READY, not PARKED


def test_thread_exception_surfaces_as_simulation_error():
    def body(node):
        yield Charge(1.0, Category.CPU)
        raise RuntimeError("app bug")

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(SimulationError, match="raised"):
        cluster.run()


def test_non_effect_yield_rejected():
    def body(node):
        yield "not an effect"

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]))
    with pytest.raises(SimulationError):
        cluster.run()


def test_idle_time_accounted_between_work():
    """A node waiting on the network accumulates IDLE charge."""
    from repro.am import install_am

    cluster = Cluster(2)
    eps = install_am(cluster)
    got = []

    def noop(ep, src, frame):
        got.append(src)
        return
        yield

    for ep in eps:
        ep.register_handler("noop", noop)

    def sender(node):
        ep = node.service("am")
        yield Charge(10.0, Category.CPU)
        yield from ep.send_short(1, "noop", nbytes=12)

    def receiver(node):
        ep = node.service("am")
        yield from ep.wait_and_poll()

    cluster.launch(0, sender(cluster.nodes[0]))
    cluster.launch(1, receiver(cluster.nodes[1]))
    cluster.run()
    assert got == [0]
    # node 1 idled from t=0 until the message was deliverable
    assert cluster.nodes[1].account.get(Category.IDLE) > 10.0


def test_states_reach_done():
    def body(node):
        yield Charge(1.0, Category.CPU)

    cluster = Cluster(1)
    t = cluster.launch(0, body(cluster.nodes[0]))
    assert t.state is ThreadState.READY
    cluster.run()
    assert t.state is ThreadState.DONE
    assert not t.alive


def test_join_self_rejected():
    def main(node):
        me = node.scheduler.current
        yield from join(node, me)

    cluster = Cluster(1)
    cluster.launch(0, main(cluster.nodes[0]))
    with pytest.raises(SimulationError):
        cluster.run()


def test_blocked_threads_listed_in_deadlock_error():
    def body(node):
        yield Park()

    cluster = Cluster(1)
    cluster.launch(0, body(cluster.nodes[0]), name="stuck-thread")
    with pytest.raises(DeadlockError) as excinfo:
        cluster.run()
    assert any("stuck-thread" in b for b in excinfo.value.blocked)
