"""Unit tests for the Split-C runtime, global pointers and memory."""

import numpy as np
import pytest

from repro.errors import GlobalPointerError, RuntimeStateError
from repro.machine.cluster import Cluster
from repro.sim.account import Category
from repro.splitc import GlobalPtr, Memory, SCProcess, SplitCRuntime, SpreadArray


def _runtime(n=2):
    cluster = Cluster(n)
    rt = SplitCRuntime(cluster)
    return cluster, rt


class TestGlobalPtr:
    def test_offset_arithmetic(self):
        gp = GlobalPtr(1, "r", 5)
        assert (gp + 3).offset == 8
        assert (gp - 2).offset == 3
        assert (gp + 3).node == 1

    def test_node_arithmetic(self):
        gp = GlobalPtr(0, "r", 5)
        assert gp.on_node(3) == GlobalPtr(3, "r", 5)

    def test_is_local(self):
        assert GlobalPtr(2, "r").is_local(2)
        assert not GlobalPtr(2, "r").is_local(0)

    def test_invalid_construction(self):
        with pytest.raises(GlobalPointerError):
            GlobalPtr(-1, "r")
        with pytest.raises(GlobalPointerError):
            GlobalPtr(0, "r", -2)

    def test_non_int_arithmetic_not_supported(self):
        with pytest.raises(TypeError):
            GlobalPtr(0, "r") + 1.5


class TestMemory:
    def test_alloc_and_access(self):
        cluster, rt = _runtime(1)
        mem = rt.memory(0)
        arr = mem.alloc("x", 4)
        arr[:] = [1, 2, 3, 4]
        assert mem.load(GlobalPtr(0, "x", 2)) == 3.0
        mem.store(GlobalPtr(0, "x", 0), 9.0)
        assert arr[0] == 9.0

    def test_double_alloc_rejected(self):
        _, rt = _runtime(1)
        rt.memory(0).alloc("x", 4)
        with pytest.raises(RuntimeStateError):
            rt.memory(0).alloc("x", 4)

    def test_out_of_bounds_rejected(self):
        _, rt = _runtime(1)
        rt.memory(0).alloc("x", 4)
        with pytest.raises(GlobalPointerError):
            rt.memory(0).load(GlobalPtr(0, "x", 4))

    def test_remote_pointer_not_dereferenceable_locally(self):
        _, rt = _runtime(2)
        rt.memory(0).alloc("x", 4)
        with pytest.raises(GlobalPointerError):
            rt.memory(0).load(GlobalPtr(1, "x", 0))

    def test_block_access(self):
        _, rt = _runtime(1)
        mem = rt.memory(0)
        mem.alloc("x", 8)
        mem.store_block(GlobalPtr(0, "x", 2), np.array([5.0, 6.0, 7.0]))
        out = mem.load_block(GlobalPtr(0, "x", 2), 3)
        assert list(out) == [5.0, 6.0, 7.0]

    def test_missing_region_rejected(self):
        _, rt = _runtime(1)
        with pytest.raises(GlobalPointerError):
            rt.memory(0).region("ghost")


class TestSpreadArray:
    def test_cyclic_layout(self):
        sp = SpreadArray("s", 10, 4, layout="cyclic")
        assert sp.locate(0) == (0, 0)
        assert sp.locate(1) == (1, 0)
        assert sp.locate(4) == (0, 1)
        assert sp.locate(9) == (1, 2)

    def test_block_layout(self):
        sp = SpreadArray("s", 10, 4, layout="block")
        # 10 over 4 -> sizes 3,3,2,2
        assert [sp.local_size(q) for q in range(4)] == [3, 3, 2, 2]
        assert sp.locate(0) == (0, 0)
        assert sp.locate(2) == (0, 2)
        assert sp.locate(3) == (1, 0)
        assert sp.locate(9) == (3, 1)

    def test_sizes_sum_to_total(self):
        for layout in ("cyclic", "block"):
            for total in (0, 1, 7, 16, 23):
                sp = SpreadArray("s", total, 4, layout=layout)
                assert sum(sp.local_size(q) for q in range(4)) == total

    def test_out_of_range_index(self):
        sp = SpreadArray("s", 4, 2)
        with pytest.raises(GlobalPointerError):
            sp.locate(4)

    def test_unknown_layout_rejected(self):
        with pytest.raises(RuntimeStateError):
            SpreadArray("s", 4, 2, layout="diagonal")


class TestAccesses:
    def _run(self, program, n=2, setup=None):
        cluster, rt = _runtime(n)
        for q in range(n):
            rt.memory(q).alloc("x", 8)
        if setup:
            setup(rt)
        results = rt.run_spmd(program)
        return cluster, rt, results

    def test_blocking_read_write(self):
        def program(proc: SCProcess):
            if proc.my_node == 0:
                yield from proc.write(proc.gptr(1, "x", 3), 42.0)
                value = yield from proc.read(proc.gptr(1, "x", 3))
                yield from proc.barrier()
                return value
            yield from proc.barrier()

        _, rt, results = self._run(program)
        assert results[0] == 42.0
        assert rt.memory(1).region("x")[3] == 42.0

    def test_local_read_write_skip_network(self):
        def program(proc):
            yield from proc.write(proc.gptr(proc.my_node, "x", 0), 7.0)
            value = yield from proc.read(proc.gptr(proc.my_node, "x", 0))
            yield from proc.barrier()
            return value

        cluster, rt, results = self._run(program, n=1)
        assert results == [7.0]
        # only barrier traffic, no read/write messages
        assert cluster.network.packets_sent == 0

    def test_split_phase_get_put_with_sync(self):
        def program(proc):
            me = proc.my_node
            if me == 0:
                for k in range(4):
                    yield from proc.put(proc.gptr(1, "x", k), float(10 + k))
                yield from proc.sync()
            yield from proc.barrier()
            if me == 1:
                local = proc.local("x")
                assert list(local[:4]) == [10.0, 11.0, 12.0, 13.0]
                for k in range(4):
                    yield from proc.get(proc.gptr(1, "x", 4 + k), proc.gptr(0, "x", k))
                yield from proc.sync()
            yield from proc.barrier()

        def setup(rt):
            rt.memory(0).region("x")[:4] = [1.0, 2.0, 3.0, 4.0]

        _, rt, _ = self._run(program, setup=setup)
        assert list(rt.memory(1).region("x")[4:8]) == [1.0, 2.0, 3.0, 4.0]

    def test_one_way_store_and_await(self):
        def program(proc):
            me = proc.my_node
            if me == 0:
                yield from proc.store(proc.gptr(1, "x", 0), 5.0)
                yield from proc.store(proc.gptr(1, "x", 1), 6.0)
            else:
                yield from proc.await_stores(2)
                assert list(proc.local("x")[:2]) == [5.0, 6.0]
            yield from proc.barrier()

        self._run(program)

    def test_store_add_accumulates(self):
        def program(proc):
            if proc.my_node == 0:
                yield from proc.store_add(proc.gptr(1, "x", 0), (1.0, 2.0))
                yield from proc.store_add(proc.gptr(1, "x", 0), (10.0, 20.0))
            else:
                yield from proc.await_stores(2)
            yield from proc.barrier()

        _, rt, _ = self._run(program)
        assert list(rt.memory(1).region("x")[:2]) == [11.0, 22.0]

    def test_bulk_read_write(self):
        data = np.linspace(1.0, 8.0, 8)

        def program(proc):
            if proc.my_node == 0:
                yield from proc.bulk_write(proc.gptr(1, "x", 0), data)
                out = yield from proc.bulk_read(proc.gptr(1, "x", 0), 8)
                yield from proc.barrier()
                return out
            yield from proc.barrier()

        _, _, results = self._run(program)
        assert np.array_equal(results[0], data)

    def test_bulk_get_split_phase(self):
        def program(proc):
            if proc.my_node == 0:
                yield from proc.bulk_get(proc.gptr(0, "x", 0), proc.gptr(1, "x", 0), 4)
                yield from proc.sync()
            yield from proc.barrier()

        def setup(rt):
            rt.memory(1).region("x")[:4] = [9.0, 8.0, 7.0, 6.0]

        _, rt, _ = self._run(program, setup=setup)
        assert list(rt.memory(0).region("x")[:4]) == [9.0, 8.0, 7.0, 6.0]

    def test_get_remote_destination_rejected(self):
        def program(proc):
            if proc.my_node == 0:
                yield from proc.get(proc.gptr(1, "x", 0), proc.gptr(1, "x", 1))
            yield from proc.barrier()

        with pytest.raises(Exception):
            self._run(program)

    def test_barrier_synchronizes_all(self):
        after = {}

        def program(proc):
            yield from proc.charge(float(proc.my_node) * 100.0)
            yield from proc.barrier()
            after[proc.my_node] = proc.node.sim.now

        self._run(program, n=4)
        # nobody leaves the barrier before the slowest arrival (t=300)
        assert all(t >= 300.0 for t in after.values())

    def test_repeated_barriers(self):
        def program(proc):
            for _ in range(5):
                yield from proc.barrier()

        self._run(program, n=4)

    def test_atomic_rpc(self):
        def bump(rt, nid, amount):
            arr = rt.memory(nid).region("x")
            arr[0] += amount
            return float(arr[0])

        def program(proc):
            if proc.my_node == 0:
                v1 = yield from proc.atomic_rpc(1, "bump", 5.0)
                v2 = yield from proc.atomic_rpc(1, "bump", 2.0)
                yield from proc.barrier()
                return (v1, v2)
            yield from proc.barrier()

        def setup(rt):
            rt.register_rpc("bump", bump)

        _, _, results = self._run(program, setup=setup)
        assert results[0] == (5.0, 7.0)

    def test_rpc_duplicate_registration_rejected(self):
        _, rt = _runtime(1)
        rt.register_rpc("f", lambda *a: None)
        with pytest.raises(RuntimeStateError):
            rt.register_rpc("f", lambda *a: None)

    def test_read_costs_runtime_and_net(self):
        def program(proc):
            if proc.my_node == 0:
                yield from proc.read(proc.gptr(1, "x", 0))
            yield from proc.barrier()

        cluster, _, _ = self._run(program)
        assert cluster.aggregate_account().get(Category.RUNTIME) > 0
        assert cluster.aggregate_account().get(Category.NET) > 0

    def test_single_thread_per_node(self):
        """Split-C never creates threads (the paper's key asymmetry)."""
        from repro.sim.account import CounterNames

        def program(proc):
            if proc.my_node == 0:
                yield from proc.read(proc.gptr(1, "x", 0))
                yield from proc.bulk_write(proc.gptr(1, "x", 0), np.ones(4))
            yield from proc.barrier()

        cluster, _, _ = self._run(program)
        counters = cluster.aggregate_counters()
        assert counters.get(CounterNames.THREAD_CREATE) == 0
        assert counters.get(CounterNames.THREAD_SYNC_OP) == 0
