"""Unit tests for Lock, Condition, Semaphore, SyncCell."""

import pytest

from repro.errors import RuntimeStateError, SimulationError
from repro.machine.cluster import Cluster
from repro.sim.account import Category, CounterNames
from repro.sim.effects import Charge
from repro.threads.sync import Condition, Lock, Semaphore, SyncCell


def _cluster():
    return Cluster(1)


class TestLock:
    def test_uncontended_acquire_release(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        lock = Lock(node)

        def body():
            yield from lock.acquire()
            assert lock.held
            yield from lock.release()
            assert not lock.held

        cluster.launch(0, body())
        cluster.run()
        assert node.counters.get(CounterNames.LOCK_UNCONTENDED) == 1
        assert node.counters.get(CounterNames.LOCK_CONTENDED) == 0
        # acquire + release = 2 sync ops
        assert node.counters.get(CounterNames.THREAD_SYNC_OP) == 2
        assert node.account.get(Category.THREAD_SYNC) == pytest.approx(0.8)

    def test_mutual_exclusion(self):
        """Contention arises when the holder yields the CPU mid-section
        (non-preemptive threads never lose the CPU during a charge)."""
        from repro.threads.api import yield_now

        cluster = _cluster()
        node = cluster.nodes[0]
        lock = Lock(node)
        trace = []

        def body(tag):
            yield from lock.acquire()
            trace.append((tag, "in"))
            yield from yield_now(node)  # give the other thread a chance
            trace.append((tag, "out"))
            yield from lock.release()

        cluster.launch(0, body("a"))
        cluster.launch(0, body("b"))
        cluster.run()
        assert trace == [("a", "in"), ("a", "out"), ("b", "in"), ("b", "out")]
        assert node.counters.get(CounterNames.LOCK_CONTENDED) == 1

    def test_fifo_handoff_order(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        lock = Lock(node)
        order = []

        def holder():
            yield from lock.acquire()
            yield Charge(50.0, Category.CPU)
            yield from lock.release()

        def waiter(tag):
            yield Charge(float(tag), Category.CPU)  # stagger arrival order
            yield from lock.acquire()
            order.append(tag)
            yield from lock.release()

        cluster.launch(0, holder())
        for tag in (1, 2, 3):
            cluster.launch(0, waiter(tag))
        cluster.run()
        assert order == [1, 2, 3]

    def test_release_by_non_owner_rejected(self):
        cluster = _cluster()
        lock = Lock(cluster.nodes[0])

        def body():
            yield from lock.release()

        cluster.launch(0, body())
        with pytest.raises(SimulationError):
            cluster.run()

    def test_reacquire_rejected(self):
        cluster = _cluster()
        lock = Lock(cluster.nodes[0])

        def body():
            yield from lock.acquire()
            yield from lock.acquire()

        cluster.launch(0, body())
        with pytest.raises(SimulationError):
            cluster.run()

    def test_locked_context_helper(self):
        cluster = _cluster()
        lock = Lock(cluster.nodes[0])

        def body():
            ctx = yield from lock.locked()
            assert lock.held
            yield from ctx.exit()
            assert not lock.held

        cluster.launch(0, body())
        cluster.run()


class TestCondition:
    def test_wait_signal(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        lock = Lock(node)
        cond = Condition(lock)
        state = {"ready": False, "observed": None}

        def consumer():
            yield from lock.acquire()
            while not state["ready"]:
                yield from cond.wait()
            state["observed"] = node.sim.now
            yield from lock.release()

        def producer():
            yield Charge(30.0, Category.CPU)
            yield from lock.acquire()
            state["ready"] = True
            yield from cond.signal()
            yield from lock.release()

        cluster.launch(0, consumer())
        cluster.launch(0, producer())
        cluster.run()
        assert state["observed"] is not None
        assert state["observed"] >= 30.0

    def test_wait_without_lock_rejected(self):
        cluster = _cluster()
        lock = Lock(cluster.nodes[0])
        cond = Condition(lock)

        def body():
            yield from cond.wait()

        cluster.launch(0, body())
        with pytest.raises(SimulationError):
            cluster.run()

    def test_broadcast_wakes_all(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        lock = Lock(node)
        cond = Condition(lock)
        released = []
        state = {"go": False}

        def waiter(tag):
            yield from lock.acquire()
            while not state["go"]:
                yield from cond.wait()
            released.append(tag)
            yield from lock.release()

        def broadcaster():
            yield Charge(10.0, Category.CPU)
            yield from lock.acquire()
            state["go"] = True
            yield from cond.broadcast()
            yield from lock.release()

        for tag in range(3):
            cluster.launch(0, waiter(tag))
        cluster.launch(0, broadcaster())
        cluster.run()
        assert sorted(released) == [0, 1, 2]

    def test_signal_with_no_waiters_is_fine(self):
        cluster = _cluster()
        lock = Lock(cluster.nodes[0])
        cond = Condition(lock)

        def body():
            yield from cond.signal()

        cluster.launch(0, body())
        cluster.run()


class TestSemaphore:
    def test_counts(self):
        cluster = _cluster()
        sem = Semaphore(cluster.nodes[0], 2)

        def body():
            yield from sem.down()
            yield from sem.down()
            assert sem.count == 0
            yield from sem.up()
            assert sem.count == 1

        cluster.launch(0, body())
        cluster.run()

    def test_blocks_at_zero_until_up(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        sem = Semaphore(node, 0)
        t = {}

        def blocked():
            yield from sem.down()
            t["resumed"] = node.sim.now

        def releaser():
            yield Charge(40.0, Category.CPU)
            yield from sem.up()

        cluster.launch(0, blocked())
        cluster.launch(0, releaser())
        cluster.run()
        assert t["resumed"] >= 40.0

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(_cluster().nodes[0], -1)


class TestSyncCell:
    def test_write_then_read(self):
        cluster = _cluster()
        cell = SyncCell(cluster.nodes[0])

        def body():
            yield from cell.write(99)
            value = yield from cell.read()
            return value

        t = cluster.launch(0, body())
        cluster.run()
        assert t.result == 99

    def test_read_blocks_until_write(self):
        cluster = _cluster()
        node = cluster.nodes[0]
        cell = SyncCell(node)
        seen = {}

        def reader():
            seen["value"] = yield from cell.read()
            seen["at"] = node.sim.now

        def writer():
            yield Charge(20.0, Category.CPU)
            yield from cell.write("hello")

        cluster.launch(0, reader())
        cluster.launch(0, writer())
        cluster.run()
        assert seen["value"] == "hello"
        assert seen["at"] >= 20.0

    def test_double_write_rejected(self):
        cluster = _cluster()
        cell = SyncCell(cluster.nodes[0])

        def body():
            yield from cell.write(1)
            yield from cell.write(2)

        cluster.launch(0, body())
        with pytest.raises(SimulationError):
            cluster.run()

    def test_peek_unwritten_raises(self):
        cell = SyncCell(_cluster().nodes[0])
        with pytest.raises(RuntimeStateError):
            cell.peek()

    def test_multiple_readers_all_released(self):
        cluster = _cluster()
        cell = SyncCell(cluster.nodes[0])
        got = []

        def reader(tag):
            value = yield from cell.read()
            got.append((tag, value))

        def writer():
            yield Charge(5.0, Category.CPU)
            yield from cell.write("v")

        for tag in range(3):
            cluster.launch(0, reader(tag))
        cluster.launch(0, writer())
        cluster.run()
        assert sorted(got) == [(0, "v"), (1, "v"), (2, "v")]
