"""Unit tests for the timeline viewer."""

import pytest

from repro.am import install_am
from repro.machine.cluster import Cluster
from repro.sim.timeline import render_timeline, summarize_kinds
from repro.sim.trace import RecordingTracer


def _traced_run():
    tracer = RecordingTracer()
    cluster = Cluster(2, tracer=tracer)
    eps = install_am(cluster)
    eps[1].register_handler("x", lambda *a: iter(()))

    def main(node):
        yield from node.service("am").send_short(1, "x", nbytes=12)

    def server(node):
        yield from node.service("am").wait_and_poll()

    cluster.launch(1, server(cluster.nodes[1]), daemon=True, name="server")
    cluster.launch(0, main(cluster.nodes[0]), name="main")
    cluster.run()
    return tracer


def test_timeline_contains_all_event_kinds():
    tracer = _traced_run()
    text = render_timeline(tracer, n_nodes=2)
    assert "thread.run" in text
    assert "send" in text
    assert "deliver" in text
    assert "node 0" in text and "node 1" in text


def test_rows_are_time_ordered():
    tracer = _traced_run()
    text = render_timeline(tracer, n_nodes=2)
    times = [
        float(line.split()[0])
        for line in text.splitlines()[2:]
        if line and line[0].isdigit() or (line and line.strip()[0].isdigit())
    ]
    assert times == sorted(times)


def test_window_and_limit():
    tracer = _traced_run()
    limited = render_timeline(tracer, n_nodes=2, limit=2)
    assert "more records" in limited
    empty = render_timeline(tracer, n_nodes=2, start=1e9)
    assert len(empty.splitlines()) <= 3


def test_invalid_node_count_rejected():
    with pytest.raises(ValueError):
        render_timeline(RecordingTracer(), n_nodes=0)


def test_summarize_kinds_counts():
    tracer = _traced_run()
    counts = summarize_kinds(tracer)
    assert counts["send"] == 1
    assert counts["deliver"] == 1
    assert counts["thread.run"] >= 2
    assert counts["thread.done"] >= 1


def test_tail_mode_shows_latest_records():
    """tail=True must render the *end* of the window, with an explicit
    note about what was omitted (regression: the head slice hid the
    newest records exactly when the tracer's deque evicts the oldest)."""
    tracer = _traced_run()
    everything = render_timeline(tracer, n_nodes=2)
    tail = render_timeline(tracer, n_nodes=2, limit=2, tail=True)
    assert "earlier records omitted" in tail
    # the last data row of the full render must appear in the tail view
    assert everything.splitlines()[-1] in tail.splitlines()
    # head mode keeps its original trailing note
    head = render_timeline(tracer, n_nodes=2, limit=2)
    assert "more records" in head


def test_tail_mode_notes_tracer_eviction():
    """When the bounded deque has already evicted records, the timeline
    must say so instead of silently rendering a partial history."""
    tracer = RecordingTracer(maxlen=4)
    for i in range(10):
        tracer.record(float(i), 0, "tick", str(i))
    assert tracer.evicted == 6
    text = render_timeline(tracer, n_nodes=1, tail=True)
    assert "6 oldest records already evicted" in text
