"""Topology construction, routing, and occupancy-accounting unit tests,
including the edge cases the fabrics must not mishandle: a 1-node
cluster, non-power-of-two fat-tree node counts, ring wraparound, and
route symmetry."""

import pytest

from repro.errors import SimulationError
from repro.machine.cluster import Cluster
from repro.machine.topology import (
    TOPOLOGY_KINDS,
    FatTreeTopology,
    FlatTopology,
    RingTopology,
    make_topology,
)


class TestConstruction:
    def test_one_node_cluster_every_kind(self):
        # degenerate but legal: loopback still routes
        for spec in ("flat", "ring", "fattree"):
            topo = make_topology(spec, 1)
            assert topo.n_nodes == 1
            route = topo.route(0, 0)
            assert all(0 <= lid < topo.n_links for lid in route)

    def test_zero_or_negative_nodes_rejected(self):
        for kind in (FlatTopology, RingTopology, FatTreeTopology):
            with pytest.raises(SimulationError):
                kind(0)

    def test_fat_tree_bad_arity_and_fatness(self):
        with pytest.raises(SimulationError):
            FatTreeTopology(8, arity=1)
        with pytest.raises(SimulationError):
            FatTreeTopology(8, fatness=0.5)

    def test_out_of_range_endpoint_rejected(self):
        topo = RingTopology(4)
        with pytest.raises(SimulationError):
            topo.route(0, 4)
        with pytest.raises(SimulationError):
            topo.route(-1, 0)

    def test_fat_tree_levels(self):
        # 64 nodes at arity 4: 16 leaves -> 4 -> 1 root
        ft = FatTreeTopology(64, arity=4)
        assert ft.level_counts == (16, 4, 1)
        # every non-root switch owns an up/down pair + 2 access links/node
        expected = 2 * 64 + 2 * (16 + 4)
        assert ft.n_links == expected

    def test_fat_tree_non_power_of_two_nodes(self):
        # 10 nodes, arity 4 -> 3 leaf switches (4+4+2), then 1 root
        ft = FatTreeTopology(10, arity=4)
        assert ft.level_counts == (3, 1)
        # all pairs route without error and stay within the link table
        for src in range(10):
            for dst in range(10):
                assert all(0 <= lid < ft.n_links for lid in ft.route(src, dst))

    def test_make_parses_options(self):
        ft = make_topology("fattree:arity=8,fatness=2", 64)
        assert isinstance(ft, FatTreeTopology)
        assert ft.arity == 8 and ft.fatness == 2.0
        ring = make_topology("ring:hop_us=3", 8)
        assert isinstance(ring, RingTopology)
        assert ring.hop_us == 3.0

    def test_make_rejects_unknown_kind_and_options(self):
        with pytest.raises(SimulationError):
            make_topology("torus", 8)
        with pytest.raises(SimulationError):
            make_topology("ring:arity=4", 8)
        with pytest.raises(SimulationError):
            make_topology("fattree:arity=huge", 8)
        assert set(TOPOLOGY_KINDS) == {"flat", "fattree", "ring"}


class TestRouting:
    def test_ring_wraparound_prefers_short_way(self):
        ring = RingTopology(8)
        # 7 -> 0 is one clockwise hop across the wrap, not 7 ccw hops
        assert ring.route(7, 0) == (7,)
        # 0 -> 7 is one counter-clockwise hop (link id n + 0)
        assert ring.route(0, 7) == (8,)
        assert ring.route(0, 0) == ()

    def test_ring_tie_goes_clockwise(self):
        ring = RingTopology(8)
        route = ring.route(0, 4)
        assert route == (0, 1, 2, 3)  # cw links, deterministic tie-break

    def test_route_symmetry_hops(self):
        # hop *counts* are symmetric on every fabric (paths mirror)
        for topo in (
            FatTreeTopology(24, arity=4),
            RingTopology(9),
            FlatTopology(6),
        ):
            for src in range(topo.n_nodes):
                for dst in range(topo.n_nodes):
                    assert topo.hops(src, dst) == topo.hops(dst, src)

    def test_fat_tree_route_shape(self):
        ft = FatTreeTopology(16, arity=4)
        # same leaf: up + down access only
        assert len(ft.route(0, 1)) == 2
        # cross-leaf: climbs one level
        assert len(ft.route(0, 5)) == 4
        # route is memoized to the same tuple object
        assert ft.route(0, 5) is ft.route(0, 5)

    def test_flat_routes_are_empty(self):
        flat = FlatTopology(4)
        assert flat.route(1, 2) == ()
        assert not flat.contention


class TestOccupancy:
    def test_uncontended_packet_pays_serialization_plus_hops(self):
        ring = RingTopology(4, hop_us=5.0)
        delay, queued = ring.occupy(0, 1, 100, 0.02, now=0.0)
        assert queued == 0.0
        assert delay == pytest.approx(100 * 0.02 + 5.0)

    def test_second_packet_queues_behind_first(self):
        ft = FatTreeTopology(8, arity=4, hop_us=0.0)
        d1, q1 = ft.occupy(0, 1, 1000, 0.02, now=0.0)
        d2, q2 = ft.occupy(2, 1, 1000, 0.02, now=0.0)
        assert q1 == 0.0
        # both packets share acc-down[1]: the second waits for the first
        assert q2 == pytest.approx(1000 * 0.02)
        assert d2 > d1

    def test_fatter_links_serialize_faster(self):
        thin = FatTreeTopology(16, arity=4, fatness=1.0, hop_us=0.0)
        fat = FatTreeTopology(16, arity=4, fatness=4.0, hop_us=0.0)
        d_thin, _ = thin.occupy(0, 5, 1000, 0.02, now=0.0)
        d_fat, _ = fat.occupy(0, 5, 1000, 0.02, now=0.0)
        assert d_fat < d_thin

    def test_link_stats_accumulate(self):
        ring = RingTopology(4, hop_us=0.0)
        ring.occupy(0, 1, 500, 0.02, now=0.0)
        ring.occupy(0, 1, 500, 0.02, now=0.0)
        stats = {s["link"]: s for s in ring.link_stats()}
        assert stats["cw[0]"]["packets"] == 2
        assert stats["cw[0]"]["bytes"] == 1000
        assert stats["cw[0]"]["queued_us"] == pytest.approx(500 * 0.02)
        assert ring.total_queued_us() == pytest.approx(500 * 0.02)
        assert ring.max_utilization(ring.busy_until[0]) == pytest.approx(1.0)
        assert ring.hot_links(1)[0]["link"] == "cw[0]"


class TestClusterIntegration:
    def test_cluster_accepts_spec_string(self):
        cluster = Cluster(8, topology="fattree:arity=4")
        assert isinstance(cluster.topology, FatTreeTopology)
        assert cluster.network.topology is cluster.topology

    def test_cluster_rejects_mis_sized_topology(self):
        with pytest.raises(SimulationError):
            Cluster(8, topology=RingTopology(4))

    def test_flat_topology_runs_byte_identical_to_none(self):
        # the byte-identity contract: an explicit flat fabric must
        # produce exactly the run a topology-free cluster does
        from repro.apps.em3d import Em3dGraph, Em3dParams, run_splitc_em3d

        graph = Em3dGraph(Em3dParams(n_nodes=40, degree=4, n_procs=4))
        base = run_splitc_em3d(graph, steps=1, warmup_steps=0)
        flat = run_splitc_em3d(graph, steps=1, warmup_steps=0, topology="flat")
        assert base.elapsed_us == flat.elapsed_us
        assert (base.values == flat.values).all()
        assert base.breakdown == flat.breakdown
        assert base.counters == flat.counters

    def test_contended_run_slower_and_counted(self):
        from repro.apps.em3d import Em3dGraph, Em3dParams, run_splitc_em3d

        graph = Em3dGraph(Em3dParams(n_nodes=40, degree=4, n_procs=4))
        base = run_splitc_em3d(graph, steps=1, warmup_steps=0)
        ring = run_splitc_em3d(graph, steps=1, warmup_steps=0, topology="ring")
        # the same program, values identical, but wire time now includes
        # hop latency and link queueing -> strictly slower
        assert (ring.values == base.values).all()
        assert ring.elapsed_us > base.elapsed_us

    def test_deadlock_dump_names_hot_links(self):
        cluster = Cluster(4, topology="ring")
        from repro.machine.network import Packet

        cluster.network.transmit(
            Packet(src=0, dst=1, kind="x", payload=None, nbytes=64)
        )
        cluster.run()
        assert "topology: ring" in cluster.diagnose()
