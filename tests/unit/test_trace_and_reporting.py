"""Unit tests for tracing, breakdown rendering, table1 counting, and the
paper reference data."""

from pathlib import Path

import pytest

from repro.experiments import paper
from repro.experiments.breakdown import BreakdownRow, render_rows
from repro.experiments.table1 import count_file, count_package
from repro.sim.trace import NullTracer, RecordingTracer


class TestTracers:
    def test_null_tracer_accepts_everything(self):
        NullTracer().record(1.0, 0, "send", "detail")

    def test_recording_tracer_keeps_records(self):
        t = RecordingTracer()
        t.record(1.0, 0, "send", "a")
        t.record(2.0, 1, "deliver", "b")
        assert len(t) == 2
        assert t.of_kind("send")[0].detail == "a"
        assert t.of_kind("deliver")[0].node == 1

    def test_kind_filter(self):
        t = RecordingTracer(kinds={"send"})
        t.record(1.0, 0, "send")
        t.record(1.0, 0, "deliver")
        assert len(t) == 1

    def test_bounded_length(self):
        t = RecordingTracer(maxlen=3)
        for i in range(10):
            t.record(float(i), 0, "send", str(i))
        assert len(t) == 3
        assert [r.detail for r in t.records] == ["7", "8", "9"]

    def test_clear(self):
        t = RecordingTracer()
        t.record(1.0, 0, "send")
        t.clear()
        assert len(t) == 0

    def test_cluster_integration(self):
        """A traced cluster records sends and deliveries."""
        from repro.am import install_am
        from repro.machine.cluster import Cluster

        tracer = RecordingTracer()
        cluster = Cluster(2, tracer=tracer)
        eps = install_am(cluster)
        eps[1].register_handler("x", lambda *a: iter(()))

        def main(node):
            yield from node.service("am").send_short(1, "x", nbytes=12)

        def server(node):
            yield from node.service("am").wait_and_poll()

        cluster.launch(1, server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, main(cluster.nodes[0]))
        cluster.run()
        assert tracer.of_kind("send")
        assert tracer.of_kind("deliver")


class TestBreakdownRow:
    def _row(self, breakdown, elapsed=100.0, normalized=1.5):
        return BreakdownRow(
            label="x", language="ccpp", elapsed_us=elapsed,
            breakdown=breakdown, normalized=normalized,
        )

    def test_fractions_sum_to_one(self):
        row = self._row({"cpu": 10.0, "net": 20.0, "runtime": 10.0, "idle": 60.0})
        frac = row.component_fractions()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_idle_folds_into_net(self):
        row = self._row({"net": 10.0, "idle": 30.0, "cpu": 60.0})
        frac = row.component_fractions()
        assert frac["net"] == pytest.approx(0.4)

    def test_empty_breakdown_is_zeros(self):
        frac = self._row({}).component_fractions()
        assert all(v == 0.0 for v in frac.values())

    def test_render_rows_contains_labels(self):
        text = render_rows(
            "T", [self._row({"cpu": 1.0, "net": 1.0})]
        )
        assert "T" in text and "ccpp" in text and "1.50" in text


class TestTable1Counting:
    def test_count_file_strips_docstrings_and_comments(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            '"""Module docstring\nspanning lines."""\n'
            "# a comment\n"
            "\n"
            "def f():\n"
            '    """doc"""\n'
            "    return 1  # trailing comment still code\n"
        )
        size = count_file(f)
        assert size.total_lines == 7
        # code lines: 'def f():' and 'return 1  # trailing...' (a trailing
        # comment does not disqualify a code line)
        assert size.code_lines == 2

    def test_count_package_aggregates(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\nz = 3\n")
        size = count_package(tmp_path)
        assert size.files == 2
        assert size.total_lines == 3
        assert size.code_lines == 3

    def test_empty_package(self, tmp_path):
        size = count_package(tmp_path)
        assert size.files == 0 and size.total_lines == 0


class TestPaperData:
    def test_table4_components_sum_to_totals(self):
        """The transcription itself must be internally consistent."""
        for name, row in paper.TABLE4.items():
            total = row.cc_am + row.cc_threads + row.cc_runtime
            assert total == pytest.approx(row.cc_total, abs=2.0), name

    def test_thread_time_matches_op_counts(self):
        c = paper.THREAD_COSTS_US
        for name, row in paper.TABLE4.items():
            predicted = (
                row.cc_yield * c["context_switch"]
                + row.cc_create * c["create"]
                + row.cc_sync * c["sync_op"]
            )
            assert predicted == pytest.approx(row.cc_threads, abs=2.0), name

    def test_splitc_columns_sum(self):
        for name, row in paper.TABLE4.items():
            if row.sc_total is not None:
                assert row.sc_am + row.sc_runtime == pytest.approx(
                    row.sc_total, abs=1.5
                ), name

    def test_figure_data_ratios(self):
        f5 = paper.FIGURE5_ABS_100PCT_S
        assert f5["base"]["ccpp"] / f5["base"]["splitc"] == pytest.approx(2.0, abs=0.1)
        f6 = paper.FIGURE6_ABS_S
        assert f6[("water-atomic", 512)]["ccpp"] / f6[("water-atomic", 512)][
            "splitc"
        ] == pytest.approx(5.6, abs=0.1)
