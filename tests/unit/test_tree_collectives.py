"""Tree collectives: O(log P) bcast/reduce/allreduce/barrier.

The correctness bar is *equality with the linear collectives* over the
whole (P, radix, root) grid — every node must see exactly the values the
linear library versions produce (contributions are small integers, so
float equality is exact) — plus the geometry invariants the rounds rest
on and both runtime adapters (Split-C and CC++).
"""

from __future__ import annotations

import pytest

from repro.ccpp import CCppRuntime
from repro.ccpp.collective import (
    make_tree as cc_make_tree,
    tree_allreduce as cc_tree_allreduce,
    tree_barrier as cc_tree_barrier,
)
from repro.errors import RuntimeStateError
from repro.machine.cluster import Cluster
from repro.rma.tree import TreeComm
from repro.splitc import SplitCRuntime
from repro.splitc.collective import (
    make_tree,
    tree_all_reduce_add,
    tree_barrier,
    tree_broadcast,
)


class TestGeometry:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 16])
    @pytest.mark.parametrize("radix", [1, 2, 3, 4])
    @pytest.mark.parametrize("root", [0, 3])
    def test_parent_child_consistency(self, n, radix, root):
        """Every non-root has exactly one parent that lists it as a
        child; the union of all child lists covers every non-root once."""
        root = root % n
        tree = TreeComm(install_endpoints(n), radix=radix)
        seen = []
        for nid in range(n):
            kids = tree.children(nid, root)
            assert len(kids) <= radix
            for k in kids:
                assert tree.parent(k, root) == nid
            seen.extend(kids)
        assert sorted(seen) == sorted(set(range(n)) - {root})

    def test_invalid_construction(self):
        with pytest.raises(RuntimeStateError, match="radix"):
            TreeComm(install_endpoints(2), radix=0)
        with pytest.raises(RuntimeStateError, match="endpoint"):
            TreeComm([])


def install_endpoints(n: int):
    from repro.am import install_am

    return install_am(Cluster(n))


def _run_tree_splitc(n: int, radix: int, root: int):
    """One bcast + one allreduce + a barrier per node; returns
    {nid: (bcast_result, allreduce_result)}."""
    cluster = Cluster(n)
    rt = SplitCRuntime(cluster)
    tree = make_tree(rt, radix=radix)
    outs: dict[int, tuple[float, float]] = {}

    def prog(proc):
        got_bc = yield from tree_broadcast(proc, tree, root, 42.0)
        got_ar = yield from tree_all_reduce_add(proc, tree, float(proc.my_node + 1))
        yield from tree_barrier(proc, tree)
        outs[proc.my_node] = (got_bc, got_ar)

    rt.run_spmd(prog)
    return outs


class TestGridEqualsLinear:
    """The linear collectives are the oracle: bcast returns the root's
    value everywhere, allreduce the global sum everywhere."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("radix", [1, 2, 3, 4])
    def test_all_roots(self, n, radix):
        total = float(n * (n + 1) // 2)
        for root in range(n):
            outs = _run_tree_splitc(n, radix, root)
            assert outs == {nid: (42.0, total) for nid in range(n)}

    def test_multiple_rounds_pipeline_cleanly(self):
        """Epoch state must isolate successive operations (the round-
        overwrite race class the linear reducer suffered from)."""
        cluster = Cluster(5)
        rt = SplitCRuntime(cluster)
        tree = make_tree(rt, radix=2)
        outs: dict[int, list[float]] = {}

        def prog(proc):
            seen = []
            for r in range(6):
                got = yield from tree.bcast(proc.my_node, r % 5, float(100 + r))
                seen.append(got)
                got = yield from tree.allreduce(proc.my_node, float(r))
                seen.append(got)
            outs[proc.my_node] = seen

        rt.run_spmd(prog)
        expect = [v for r in range(6) for v in (float(100 + r), float(5 * r))]
        assert all(seen == expect for seen in outs.values()), outs

    def test_reduce_only_root_gets_total(self):
        cluster = Cluster(6)
        rt = SplitCRuntime(cluster)
        tree = make_tree(rt, radix=3)
        outs: dict[int, float | None] = {}

        def prog(proc):
            outs[proc.my_node] = yield from tree.reduce(
                proc.my_node, 2, float(proc.my_node)
            )

        rt.run_spmd(prog)
        assert outs[2] == 15.0
        assert all(outs[nid] is None for nid in range(6) if nid != 2)


class TestCcppAdapter:
    def test_allreduce_and_barrier_from_rmi_contexts(self):
        cluster = Cluster(4)
        rt = CCppRuntime(cluster)
        tree = cc_make_tree(rt, radix=2)
        outs: dict[int, float] = {}

        def worker(ctx):
            outs[ctx.nid] = yield from cc_tree_allreduce(ctx, tree, float(ctx.nid))
            yield from cc_tree_barrier(ctx, tree)

        for nid in range(4):
            rt.launch(nid, worker, f"w{nid}")
        rt.run()
        assert outs == {nid: 6.0 for nid in range(4)}
