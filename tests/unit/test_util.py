"""Unit tests for repro.util (units, stats, tables, rng)."""

import math

import pytest

from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.util.stats import OnlineStats, geometric_mean, mean, percentile
from repro.util.tables import TextTable
from repro.util.units import (
    US_PER_MS,
    US_PER_S,
    fmt_bytes,
    fmt_time_us,
    ms_to_us,
    s_to_us,
    us_to_ms,
    us_to_s,
)


class TestUnits:
    def test_roundtrip_ms(self):
        assert us_to_ms(ms_to_us(3.5)) == 3.5

    def test_roundtrip_s(self):
        assert us_to_s(s_to_us(0.26)) == pytest.approx(0.26)

    def test_constants(self):
        assert US_PER_MS == 1_000
        assert US_PER_S == 1_000_000

    def test_fmt_time_us_unit_selection(self):
        assert fmt_time_us(88.0) == "88.0 us"
        assert fmt_time_us(1350.0) == "1.4 ms"
        assert fmt_time_us(2_910_000.0) == "2.91 s"

    def test_fmt_time_nan(self):
        assert fmt_time_us(float("nan")) == "nan"

    def test_fmt_bytes(self):
        assert fmt_bytes(160) == "160 B"
        assert fmt_bytes(4096) == "4.0 KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0 MiB"


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_percentile_bounds(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 4.0
        assert percentile(xs, 50) == pytest.approx(2.5)

    def test_percentile_validates_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_online_stats_matches_direct(self):
        xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        st = OnlineStats()
        st.extend(xs)
        assert st.count == len(xs)
        assert st.mean == pytest.approx(mean(xs))
        direct_var = sum((x - mean(xs)) ** 2 for x in xs) / (len(xs) - 1)
        assert st.variance == pytest.approx(direct_var)
        assert st.stdev == pytest.approx(math.sqrt(direct_var))
        assert st.min == 1.0
        assert st.max == 9.0

    def test_online_stats_empty_errors(self):
        st = OnlineStats()
        with pytest.raises(ValueError):
            _ = st.mean
        with pytest.raises(ValueError):
            _ = st.min

    def test_online_stats_single_sample(self):
        st = OnlineStats()
        st.add(7.0)
        assert st.variance == 0.0


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["name", "value"])
        t.add_row(["x", 1.0])
        t.add_row(["longer", 22.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in out
        assert "22.5" in out

    def test_title_renders_with_underline(self):
        t = TextTable(["a"], title="My Table")
        t.add_row([1])
        lines = t.render().splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_wrong_column_count_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_separator_renders_rule(self):
        t = TextTable(["a"])
        t.add_row([1])
        t.add_separator()
        t.add_row([2])
        lines = t.render().splitlines()
        assert any(set(line) <= {"-", "+"} for line in lines[2:])


class TestRng:
    def test_default_seed_deterministic(self):
        a = make_rng().integers(0, 1 << 30, 10)
        b = make_rng().integers(0, 1 << 30, 10)
        assert list(a) == list(b)

    def test_explicit_seed(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        c = make_rng(8).random(5)
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_derive_seed_deterministic_and_salted(self):
        s1 = derive_seed(DEFAULT_SEED, 0, "em3d")
        s2 = derive_seed(DEFAULT_SEED, 0, "em3d")
        s3 = derive_seed(DEFAULT_SEED, 1, "em3d")
        s4 = derive_seed(DEFAULT_SEED, 0, "water")
        assert s1 == s2
        assert len({s1, s3, s4}) == 3

    def test_derive_seed_in_valid_range(self):
        for salt in range(20):
            s = derive_seed(123, salt)
            assert 0 <= s < 2**31 - 1
