"""Unit tests for the stall watchdog and the DeadlockError diagnostics.

Two distinct failure shapes:

* **drain deadlock** — the event queue empties while non-daemon threads
  are still blocked (a lost credit refill with retries disabled);
  caught by ``Cluster._check_deadlock`` after ``run()`` returns.
* **virtual-time livelock** — events keep firing (a retransmit timer
  whose packets the fault plan keeps eating) but no packet is delivered
  and no thread takes a step; only the watchdog can catch this one.

Both raise :class:`DeadlockError` carrying the full diagnostic dump.
"""

import pytest

from repro.am import RetryPolicy, install_am
from repro.errors import DeadlockError, SimulationError
from repro.machine.cluster import Cluster
from repro.machine.costs import SP2_COSTS
from repro.machine.faults import FaultPlan
from repro.sim.engine import Simulator, Watchdog


class TestWatchdogEngine:
    def test_window_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Watchdog(sim, lambda: 0, window_us=0.0, on_stall=lambda: False)

    def test_detects_livelock(self):
        """Self-rescheduling events with a frozen metric trip the dog."""
        sim = Simulator()

        def spin():
            sim.schedule(10.0, spin)

        sim.schedule(10.0, spin)

        class Boom(Exception):
            pass

        def on_stall():
            raise Boom

        Watchdog(sim, lambda: 0, window_us=100.0, on_stall=on_stall).start()
        with pytest.raises(Boom):
            sim.run()
        assert sim.now == pytest.approx(100.0)

    def test_progress_resets_the_stall_count(self):
        sim = Simulator()
        beat = {"n": 0}

        def pulse():
            beat["n"] += 1
            if beat["n"] < 5:
                sim.schedule(60.0, pulse)

        sim.schedule(60.0, pulse)
        stalls = []
        dog = Watchdog(
            sim, lambda: beat["n"], window_us=100.0, on_stall=lambda: stalls.append(1) or True
        ).start()
        sim.run()
        assert not stalls  # a pulse landed inside every window
        assert dog.ticks >= 2

    def test_does_not_keep_simulation_alive(self):
        """With nothing else pending, the watchdog stands down by itself."""
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        dog = Watchdog(sim, lambda: 0, window_us=50.0, on_stall=lambda: True).start()
        sim.run()  # must terminate
        assert dog.ticks == 1  # fired once, found nothing pending, stopped
        assert sim.now == pytest.approx(50.0)

    def test_stop_cancels(self):
        sim = Simulator()
        sim.schedule(200.0, lambda: None)
        dog = Watchdog(sim, lambda: 0, window_us=50.0, on_stall=lambda: True).start()
        dog.stop()
        sim.run()
        assert dog.ticks == 0


def _poll_server(node):
    ep = node.service("am")
    while True:
        yield from ep.wait_and_poll()


class TestDrainDeadlock:
    def test_lost_refill_with_retries_disabled(self):
        """ISSUE acceptance case: a 2-credit window, the refill eaten by
        the fault plan, retransmissions off — the sender blocks forever
        and the drained queue turns into a diagnosed DeadlockError."""
        cluster = Cluster(
            2,
            costs=SP2_COSTS.with_net(credit_window=2),
            faults=FaultPlan().drop("am.credit", rate=1.0),
        )
        eps = install_am(cluster, reliable=True, retry=RetryPolicy(max_retries=0))
        eps[1].register_handler("h", lambda *a: iter(()))

        def sender(node):
            ep = node.service("am")
            for i in range(4):  # needs refills after the first two
                yield from ep.send_short(1, "h", nbytes=16)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        with pytest.raises(DeadlockError) as excinfo:
            cluster.run()
        err = excinfo.value
        assert "blocked non-daemon" in str(err)
        assert err.blocked  # the sender, by name and state
        # the dump pinpoints the credit spin and the protocol state
        assert "_acquire_credit" in err.diagnostics
        assert "credits=" in err.diagnostics
        assert "unacked=" in err.diagnostics  # the receiver's lost refill

    def test_diagnose_lists_generator_stacks(self):
        cluster = Cluster(2)
        install_am(cluster)

        def waiter(node):
            yield from node.service("am").wait_and_poll()  # nothing ever comes

        cluster.launch(0, waiter(cluster.nodes[0]))
        with pytest.raises(DeadlockError) as excinfo:
            cluster.run()
        assert "wait_and_poll" in excinfo.value.diagnostics


class TestLivelockWatchdog:
    def _stuck_cluster(self):
        """Sender spins for a reply while every packet to node 1 is eaten
        and an effectively-uncapped retry policy retransmits forever."""
        cluster = Cluster(2, faults=FaultPlan().drop("am.", rate=1.0, dst=1))
        eps = install_am(
            cluster,
            reliable=True,
            retry=RetryPolicy(timeout_us=100.0, backoff=2.0, max_timeout_us=500.0, max_retries=10**9),
        )
        eps[1].register_handler("h", lambda *a: iter(()))
        got = []

        def sender(node):
            ep = node.service("am")
            yield from ep.send_short(1, "h", nbytes=16)
            yield from ep.poll_until(lambda: bool(got))  # reply never comes

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        return cluster

    def test_retransmit_storm_is_caught(self):
        cluster = self._stuck_cluster()
        with pytest.raises(DeadlockError) as excinfo:
            cluster.run(watchdog_us=5_000.0)
        err = excinfo.value
        assert "stall watchdog" in str(err)
        assert err.blocked
        assert "unacked=" in err.diagnostics
        assert "retries" in err.diagnostics
        # without the watchdog this run would spin in virtual time forever
        assert cluster.sim.now <= 20_000.0

    def test_without_watchdog_it_really_is_a_livelock(self):
        cluster = self._stuck_cluster()
        with pytest.raises(SimulationError, match="max_events"):
            cluster.run(max_events=20_000)

    def test_healthy_run_unaffected_by_watchdog(self):
        def run(watchdog_us):
            cluster = Cluster(2)
            eps = install_am(cluster)
            got = []

            def h(ep, src, frame):
                got.append(frame.args[0])
                return
                yield

            eps[1].register_handler("h", h)

            def sender(node):
                ep = node.service("am")
                for i in range(20):
                    yield from ep.send_short(1, "h", args=(i,), nbytes=16)

            cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
            cluster.launch(0, sender(cluster.nodes[0]))
            cluster.run(watchdog_us=watchdog_us)
            return cluster.sim.now, got

        t_plain, got_plain = run(None)
        t_dog, got_dog = run(50.0)  # many windows inside the run
        assert got_plain == got_dog == list(range(20))
        # the trailing tick rounds the end time up to its window boundary
        # (the dog's only observable footprint on a healthy run)
        assert t_plain <= t_dog <= t_plain + 50.0

    def test_long_compute_is_not_a_stall(self):
        """A thread mid-charge spans windows without a trampoline step;
        the watchdog must treat a running thread as progress."""
        from repro.sim.account import Category
        from repro.sim.effects import Charge

        cluster = Cluster(1)

        def cruncher(node):
            yield Charge(1_000_000.0, Category.CPU)  # 1 simulated second

        cluster.launch(0, cruncher(cluster.nodes[0]))
        elapsed = cluster.run(watchdog_us=10_000.0)
        # finishes (no false DeadlockError); at most one trailing window
        assert 1_000_000.0 <= elapsed <= 1_010_000.0

    def test_batched_charge_run_is_not_a_stall(self):
        """The batched tier collapses whole charge sequences into one
        ChargeRun effect — many watchdog windows can elapse inside a
        single trampoline entry.  Same rule as a long Charge: a running
        thread is progress, never a stall."""
        from repro.sim.account import Category
        from repro.sim.effects import Charge, ChargeRun

        cluster = Cluster(1)

        def batched(node):
            # 100 x 20 ms in one effect: ~200 windows with zero steps
            yield ChargeRun(*(Charge(20_000.0, Category.CPU) for _ in range(100)))

        cluster.launch(0, batched(cluster.nodes[0]))
        elapsed = cluster.run(watchdog_us=10_000.0)
        assert 2_000_000.0 <= elapsed <= 2_010_000.0

    def test_genuine_stall_inside_batched_run_still_caught(self):
        """The converse guarantee: interleaving a ChargeRun worker with a
        retransmit storm must not mask the livelock — once the batched
        compute finishes and the storm spins on, the dog still fires."""
        from repro.sim.account import Category
        from repro.sim.effects import Charge, ChargeRun

        cluster = self._stuck_cluster()

        def batched(node):
            yield ChargeRun(*(Charge(1_000.0, Category.CPU) for _ in range(8)))

        cluster.launch(0, batched(cluster.nodes[0]), "cruncher", daemon=True)
        with pytest.raises(DeadlockError) as excinfo:
            cluster.run(watchdog_us=5_000.0)
        assert "stall watchdog" in str(excinfo.value)


class TestDiagnosticsDump:
    def _deadlock(self, **cluster_kw):
        """The lost-refill drain deadlock, parameterized over extras."""
        cluster = Cluster(
            2,
            costs=SP2_COSTS.with_net(credit_window=2),
            faults=FaultPlan().drop("am.credit", rate=1.0),
            **cluster_kw,
        )
        eps = install_am(cluster, reliable=True, retry=RetryPolicy(max_retries=0))
        eps[1].register_handler("h", lambda *a: iter(()))

        def sender(node):
            ep = node.service("am")
            for i in range(4):
                yield from ep.send_short(1, "h", nbytes=16)

        cluster.launch(1, _poll_server(cluster.nodes[1]), daemon=True)
        cluster.launch(0, sender(cluster.nodes[0]))
        with pytest.raises(DeadlockError) as excinfo:
            cluster.run()
        return excinfo.value

    def test_unmetered_dump_has_no_gauges(self):
        err = self._deadlock()
        assert "gauge " not in err.diagnostics

    def test_metered_dump_includes_gauge_snapshot(self):
        """With metrics installed, the deadlock dump folds in the same
        end-of-run gauge snapshot a clean run reports — one line per
        gauge, sorted, so dumps diff cleanly across runs."""
        from repro.obs.metrics import Metrics

        err = self._deadlock(metrics=Metrics())
        lines = [l for l in err.diagnostics.splitlines() if l.startswith("gauge ")]
        assert lines, "metered dump carried no gauges"
        names = [l.split("=")[0] for l in lines]
        assert names == sorted(names)
        for line in lines:
            assert "=" in line

    def test_dump_includes_membership_when_detector_installed(self):
        """diagnose() — the text every DeadlockError carries — must show
        the failure detector's degraded views (a deadlock right after a
        death declaration is exactly when you want to see who was
        blamed).  Checked on diagnose() directly: a cluster with both a
        detector and a hang never drains on its own, the watchdog path
        is covered above, and the dump builder is shared by both."""
        from repro.ft import install_detector

        cluster = Cluster(2)
        install_am(cluster)
        fd = install_detector(cluster, interval_us=100.0, phi=4.0)
        assert "membership: all views intact" in cluster.diagnose()
        fd.memberships[0].declare_dead(1)
        assert "membership: node 0: epoch=1 alive=[0]" in cluster.diagnose()
