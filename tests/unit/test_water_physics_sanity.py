"""Physical sanity of the Water MD integrator over multiple steps."""

import numpy as np
import pytest

from repro.apps.water import WaterParams, WaterSystem, reference_water, run_splitc_water
from repro.apps.water.system import pair_interaction


def _total_energy(system, pos, vel):
    n = len(pos)
    kinetic = 0.5 * float((vel * vel).sum())
    potential = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            _, p = pair_interaction(pos[i], pos[j])
            potential += p
    return kinetic + potential


def test_energy_drift_bounded_over_steps():
    """Euler integration with a tiny dt: total energy must drift only
    slightly over a handful of steps (a blow-up means broken forces)."""
    system = WaterSystem(WaterParams(n_molecules=8, n_procs=4, steps=1, dt=1e-4))
    e0 = _total_energy(system, system.positions, system.velocities)
    pos, vel, _ = reference_water(system, 5)
    e1 = _total_energy(system, pos, vel)
    assert abs(e1 - e0) < 0.05 * max(1.0, abs(e0))


def test_simulated_run_conserves_momentum():
    system = WaterSystem(WaterParams(n_molecules=8, n_procs=4, steps=3))
    res = run_splitc_water(system, version="prefetch")
    p_before = system.velocities.sum(axis=0)
    p_after = res.velocities.sum(axis=0)
    assert np.allclose(p_before, p_after, atol=1e-9)


def test_forces_shrink_with_distance_scale():
    """Far-apart lattices interact weakly: potential magnitude drops as
    spacing grows."""
    tight = WaterSystem(WaterParams(n_molecules=8, n_procs=4, spacing=1.4))
    loose = WaterSystem(WaterParams(n_molecules=8, n_procs=4, spacing=3.0))
    _, _, pot_tight = reference_water(tight, 1)
    _, _, pot_loose = reference_water(loose, 1)
    assert abs(pot_loose) < abs(pot_tight)
